package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"testing/quick"

	"wrbpg/internal/cdag"
)

func sampleSchedule() Schedule {
	return Schedule{{M1, 0}, {M1, 1}, {M3, 2}, {M2, 2}, {M4, 0}, {M4, 1}, {M4, 2}}
}

func TestTextRoundTrip(t *testing.T) {
	s := sampleSchedule()
	data, err := s.MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	var back Schedule
	if err := back.UnmarshalText(data); err != nil {
		t.Fatal(err)
	}
	if len(back) != len(s) {
		t.Fatalf("len %d != %d", len(back), len(s))
	}
	for i := range s {
		if back[i] != s[i] {
			t.Fatalf("move %d: %v != %v", i, back[i], s[i])
		}
	}
}

func TestParseScheduleCommentsAndBlanks(t *testing.T) {
	in := "# firmware schedule\n\nM1 0\n  M3 2  \n# done\nM2 2\n"
	s, err := ParseSchedule(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := Schedule{{M1, 0}, {M3, 2}, {M2, 2}}
	if len(s) != len(want) {
		t.Fatalf("got %v", s)
	}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("got %v", s)
		}
	}
}

func TestParseScheduleErrors(t *testing.T) {
	for _, in := range []string{"M5 0", "M1", "M1 x", "M1 -2", "M1 0 extra"} {
		if _, err := ParseSchedule(strings.NewReader(in)); err == nil {
			t.Errorf("%q should fail", in)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	s := sampleSchedule()
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"kind":"M3"`) {
		t.Errorf("json = %s", data)
	}
	var back Schedule
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	for i := range s {
		if back[i] != s[i] {
			t.Fatalf("move %d differs", i)
		}
	}
}

func TestJSONUnmarshalErrors(t *testing.T) {
	var s Schedule
	if err := json.Unmarshal([]byte(`[{"kind":"M9","node":1}]`), &s); err == nil {
		t.Error("unknown kind should fail")
	}
	if err := json.Unmarshal([]byte(`{"kind":"M1"}`), &s); err == nil {
		t.Error("non-array should fail")
	}
}

func TestRoundTripQuick(t *testing.T) {
	f := func(kinds []uint8, nodes []uint8) bool {
		n := len(kinds)
		if len(nodes) < n {
			n = len(nodes)
		}
		s := make(Schedule, n)
		for i := 0; i < n; i++ {
			s[i] = Move{Kind: MoveKind(kinds[i]%4 + 1), Node: cdag.NodeID(nodes[i])}
		}
		txt, err := s.MarshalText()
		if err != nil {
			return false
		}
		var fromTxt Schedule
		if err := fromTxt.UnmarshalText(txt); err != nil {
			return false
		}
		js, err := json.Marshal(s)
		if err != nil {
			return false
		}
		var fromJS Schedule
		if err := json.Unmarshal(js, &fromJS); err != nil {
			return false
		}
		if len(fromTxt) != n || len(fromJS) != n {
			return false
		}
		for i := 0; i < n; i++ {
			if fromTxt[i] != s[i] || fromJS[i] != s[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestManifestRoundTripAndVerify(t *testing.T) {
	g, a, b, c := pair(2, 3, 4)
	sched := Schedule{{M1, a}, {M1, b}, {M3, c}, {M2, c}, {M4, a}, {M4, b}, {M4, c}}
	m, err := NewManifest("pair/test", g, 9, sched)
	if err != nil {
		t.Fatal(err)
	}
	if m.CostBits != 9 || m.PeakBits != 9 {
		t.Fatalf("manifest metrics %+v", m)
	}
	var buf bytes.Buffer
	if err := WriteManifest(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := ReadManifest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Verify(g); err != nil {
		t.Fatal(err)
	}
	// Tampering with the recorded cost is caught.
	back.CostBits++
	if err := back.Verify(g); err == nil {
		t.Error("tampered manifest should fail verification")
	}
	// A manifest against the wrong graph fails.
	g2, _, _, _ := pair(1, 1, 9)
	back.CostBits--
	if err := back.Verify(g2); err == nil {
		t.Error("wrong-graph manifest should fail verification")
	}
}

func TestNewManifestRejectsInvalidSchedule(t *testing.T) {
	g, a, _, _ := pair(2, 3, 4)
	if _, err := NewManifest("bad", g, 9, Schedule{{M4, a}}); err == nil {
		t.Error("invalid schedule accepted")
	}
}

func TestReadManifestErrors(t *testing.T) {
	if _, err := ReadManifest(strings.NewReader("{")); err == nil {
		t.Error("truncated JSON accepted")
	}
}
