package core

import (
	"fmt"

	"wrbpg/internal/cdag"
)

// Stats summarises a simulated schedule.
type Stats struct {
	// Cost is the weighted schedule cost (Definition 2.2): the sum of
	// node weights over all M1 and M2 moves.
	Cost cdag.Weight
	// InputCost is the M1 share of Cost; OutputCost the M2 share.
	InputCost  cdag.Weight
	OutputCost cdag.Weight
	// PeakRedWeight is the largest total red weight observed after any
	// move — the fast memory capacity the schedule actually needs.
	PeakRedWeight cdag.Weight
	// Moves counts moves by kind (indices M1..M4).
	Moves [5]int
	// Computations is the number of M3 moves (= Moves[M3]).
	Computations int
}

// Simulate replays a schedule from the starting snapshot, enforcing
// every rule and the weighted red pebble constraint, and checks the
// stopping condition at the end. It is the single source of truth for
// schedule validity and cost in this repository: schedulers produce
// move sequences, Simulate certifies them.
func Simulate(g *cdag.Graph, budget cdag.Weight, s Schedule) (Stats, error) {
	st := NewState(g, budget)
	var stats Stats
	for i, m := range s {
		c, err := st.Apply(m)
		if err != nil {
			re := err.(*RuleError)
			re.Index = i
			return stats, re
		}
		stats.Cost += c
		switch m.Kind {
		case M1:
			stats.InputCost += c
		case M2:
			stats.OutputCost += c
		case M3:
			stats.Computations++
		}
		stats.Moves[m.Kind]++
		if st.RedWeight() > stats.PeakRedWeight {
			stats.PeakRedWeight = st.RedWeight()
		}
	}
	if !st.Done() {
		for v := 0; v < g.Len(); v++ {
			id := cdag.NodeID(v)
			if g.IsSink(id) && !st.Label(id).HasBlue() {
				return stats, fmt.Errorf("wrbpg: stopping condition unmet: sink %d (%s) has label %s", id, g.Name(id), st.Label(id))
			}
		}
	}
	return stats, nil
}

// Cost computes the weighted cost of a schedule without validating it:
// the sum of node weights over all M1/M2 moves. Prefer Simulate when
// legality matters.
func Cost(g *cdag.Graph, s Schedule) cdag.Weight {
	var c cdag.Weight
	for _, m := range s {
		if m.Kind == M1 || m.Kind == M2 {
			c += g.Weight(m.Node)
		}
	}
	return c
}

// LowerBound returns the algorithmic lower bound of Proposition 2.4:
// the weighted sum of all sources and sinks. Every valid schedule
// costs at least this much, because each source must be loaded (M1)
// and each sink stored (M2) at least once.
func LowerBound(g *cdag.Graph) cdag.Weight {
	return g.SourceWeight() + g.SinkWeight()
}

// ScheduleExists reports whether a valid WRBPG schedule exists for g
// under the given budget (Proposition 2.3): for every non-source node
// v, w_v + Σ_{p∈H(v)} w_p ≤ B.
func ScheduleExists(g *cdag.Graph, budget cdag.Weight) bool {
	return g.MaxComputePressure() <= budget
}

// MinExistenceBudget returns the smallest budget for which a valid
// schedule exists: max over non-source v of w_v + Σ parents.
func MinExistenceBudget(g *cdag.Graph) cdag.Weight {
	return g.MaxComputePressure()
}

// Snapshots replays a schedule and returns every intermediate label
// vector (C_0 ... C_t), mainly for debugging, visualisation and tests.
// The schedule must be valid for the budget.
func Snapshots(g *cdag.Graph, budget cdag.Weight, s Schedule) ([][]Label, error) {
	st := NewState(g, budget)
	out := make([][]Label, 0, len(s)+1)
	snap := func() {
		ls := make([]Label, g.Len())
		for v := 0; v < g.Len(); v++ {
			ls[v] = st.Label(cdag.NodeID(v))
		}
		out = append(out, ls)
	}
	snap()
	for i, m := range s {
		if _, err := st.Apply(m); err != nil {
			re := err.(*RuleError)
			re.Index = i
			return nil, re
		}
		snap()
	}
	return out, nil
}

// Concat concatenates schedules in order, a helper for the modular
// composition the paper advocates (schedules for modules are stitched
// together into a schedule for the whole task).
func Concat(parts ...Schedule) Schedule {
	n := 0
	for _, p := range parts {
		n += len(p)
	}
	out := make(Schedule, 0, n)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}
