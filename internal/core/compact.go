package core

import (
	"wrbpg/internal/cdag"
)

// Compact removes provably useless moves from a schedule — the
// peephole pass a schedule compiler runs before burning moves into
// firmware, where every stored move costs ROM and every executed move
// costs a cycle. Two conservative rules:
//
//  1. A load or compute whose red pebble is deleted without any
//     intervening use (no child computed from it, no store, and —
//     for M1 — no role in the stopping condition) did nothing: drop
//     the M1/M3 and its matching M4.
//  2. A store M2(v) on a non-sink v whose blue pebble is never read
//     back (no later M1(v)) paid for nothing: drop it.
//
// Rule 1 never drops an M3 whose value is a sink (the compute may be
// needed for the stopping condition via an M2 that rule 2 keeps).
// Compacting preserves validity and the stopping condition, and never
// increases cost; the fixpoint is reached by iterating, since each
// pass only removes moves.
func Compact(g *cdag.Graph, s Schedule) Schedule {
	cur := append(Schedule(nil), s...)
	for {
		next := compactOnce(g, cur)
		if len(next) == len(cur) {
			return next
		}
		cur = next
	}
}

func compactOnce(g *cdag.Graph, s Schedule) Schedule {
	drop := make([]bool, len(s))

	// Rule 1: find M1/M3 … M4 spans with no use of the red pebble.
	// openIdx[v] is the index of v's live red-pebble placement.
	openIdx := map[cdag.NodeID]int{}
	used := map[cdag.NodeID]bool{}
	for i, m := range s {
		switch m.Kind {
		case M1, M3:
			openIdx[m.Node] = i
			used[m.Node] = m.Kind == M3 && g.IsSink(m.Node)
			if m.Kind == M3 {
				// The compute uses its parents' red pebbles.
				for _, p := range g.Parents(m.Node) {
					used[p] = true
				}
			}
		case M2:
			used[m.Node] = true
		case M4:
			if j, ok := openIdx[m.Node]; ok && !used[m.Node] {
				drop[j] = true
				drop[i] = true
			}
			delete(openIdx, m.Node)
			delete(used, m.Node)
		}
	}

	// Rule 2: M2 on a non-sink never read back.
	lastLoad := map[cdag.NodeID]int{}
	for i := len(s) - 1; i >= 0; i-- {
		m := s[i]
		if drop[i] {
			continue
		}
		switch m.Kind {
		case M1:
			lastLoad[m.Node] = i
		case M2:
			if g.IsSink(m.Node) {
				continue
			}
			if j, ok := lastLoad[m.Node]; !ok || j < i {
				drop[i] = true
			}
		}
	}

	out := make(Schedule, 0, len(s))
	for i, m := range s {
		if !drop[i] {
			out = append(out, m)
		}
	}
	return out
}
