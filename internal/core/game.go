// Package core implements the Weighted Red-Blue Pebble Game (WRBPG),
// the primary contribution of the paper.
//
// The game is played on a node-weighted CDAG (package cdag) with a
// weighted red-pebble budget B. The four moves are those of the
// classic red-blue pebble game of Hong & Kung:
//
//	M1(v)  copy to fast memory  — add a red pebble to a node with a blue pebble
//	M2(v)  copy to slow memory  — add a blue pebble to a node with a red pebble
//	M3(v)  compute              — if all parents of v hold red pebbles, add a red pebble to v
//	M4(v)  delete a red pebble  — blue pebbles are never deleted
//
// Every source node starts with a blue pebble; the game ends when all
// sink nodes hold blue pebbles. The weighted red pebble constraint
// (Definition 2.1) requires the total weight of red-pebbled nodes to
// stay at or below B after every move. The weighted schedule cost
// (Definition 2.2) is the sum of node weights over all M1 and M2
// moves.
package core

import (
	"fmt"
	"strings"

	"wrbpg/internal/cdag"
)

// MoveKind enumerates the four moves of the game.
type MoveKind uint8

const (
	// M1 copies a node from slow to fast memory (blue → +red).
	M1 MoveKind = iota + 1
	// M2 copies a node from fast to slow memory (red → +blue).
	M2
	// M3 computes a node whose parents are all red, placing a red pebble.
	M3
	// M4 deletes a red pebble.
	M4
)

// String returns the paper's name for the move kind.
func (k MoveKind) String() string {
	switch k {
	case M1:
		return "M1"
	case M2:
		return "M2"
	case M3:
		return "M3"
	case M4:
		return "M4"
	default:
		return fmt.Sprintf("MoveKind(%d)", uint8(k))
	}
}

// Move is a single step σ of a schedule: one of M1..M4 applied to a node.
type Move struct {
	Kind MoveKind
	Node cdag.NodeID
}

func (m Move) String() string { return fmt.Sprintf("%s(%d)", m.Kind, m.Node) }

// Schedule is a sequence of moves S_G = (σ1, ..., σt).
type Schedule []Move

// Append returns s with the given moves appended; a fluent helper for
// schedule construction.
func (s Schedule) Append(moves ...Move) Schedule { return append(s, moves...) }

// String renders the schedule compactly, e.g. "M1(0) M1(1) M3(2)".
func (s Schedule) String() string {
	parts := make([]string, len(s))
	for i, m := range s {
		parts[i] = m.String()
	}
	return strings.Join(parts, " ")
}

// Label is the pebbling state λ_v of a node within a snapshot.
type Label uint8

const (
	// LabelNone marks a node with no pebbles.
	LabelNone Label = iota
	// LabelRed marks a node resident only in fast memory.
	LabelRed
	// LabelBlue marks a node resident only in slow memory.
	LabelBlue
	// LabelBoth marks a node resident in both memories.
	LabelBoth
)

// String returns the label name used in the paper.
func (l Label) String() string {
	switch l {
	case LabelNone:
		return "none"
	case LabelRed:
		return "red"
	case LabelBlue:
		return "blue"
	case LabelBoth:
		return "both"
	default:
		return fmt.Sprintf("Label(%d)", uint8(l))
	}
}

// HasRed reports whether the label includes a red pebble.
func (l Label) HasRed() bool { return l == LabelRed || l == LabelBoth }

// HasBlue reports whether the label includes a blue pebble.
func (l Label) HasBlue() bool { return l == LabelBlue || l == LabelBoth }
