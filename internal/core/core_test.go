package core

import (
	"strings"
	"testing"

	"wrbpg/internal/cdag"
)

// pair builds the smallest interesting CDAG: two inputs feeding one
// output, with weights (wa, wb, wc).
func pair(wa, wb, wc cdag.Weight) (*cdag.Graph, cdag.NodeID, cdag.NodeID, cdag.NodeID) {
	g := &cdag.Graph{}
	a := g.AddNode(wa, "a")
	b := g.AddNode(wb, "b")
	c := g.AddNode(wc, "c", a, b)
	return g, a, b, c
}

func TestMoveKindString(t *testing.T) {
	if M1.String() != "M1" || M2.String() != "M2" || M3.String() != "M3" || M4.String() != "M4" {
		t.Error("move kind names wrong")
	}
	if !strings.Contains(MoveKind(9).String(), "9") {
		t.Error("unknown kind should include the number")
	}
}

func TestLabelHelpers(t *testing.T) {
	cases := []struct {
		l         Label
		red, blue bool
		name      string
	}{
		{LabelNone, false, false, "none"},
		{LabelRed, true, false, "red"},
		{LabelBlue, false, true, "blue"},
		{LabelBoth, true, true, "both"},
	}
	for _, c := range cases {
		if c.l.HasRed() != c.red || c.l.HasBlue() != c.blue || c.l.String() != c.name {
			t.Errorf("label %v: red=%v blue=%v name=%q", c.l, c.l.HasRed(), c.l.HasBlue(), c.l.String())
		}
	}
}

func TestStartingCondition(t *testing.T) {
	g, a, b, c := pair(1, 1, 1)
	st := NewState(g, 10)
	if st.Label(a) != LabelBlue || st.Label(b) != LabelBlue {
		t.Error("sources must start blue")
	}
	if st.Label(c) != LabelNone {
		t.Error("non-sources must start empty")
	}
	if st.RedWeight() != 0 {
		t.Error("no red weight at start")
	}
	if st.Done() {
		t.Error("game cannot be done at start")
	}
}

func TestM1Rules(t *testing.T) {
	g, a, _, c := pair(2, 3, 4)
	st := NewState(g, 10)
	// M1 on a blue node succeeds and costs its weight.
	cost, err := st.Apply(Move{M1, a})
	if err != nil || cost != 2 {
		t.Fatalf("M1(a): cost=%d err=%v", cost, err)
	}
	if st.Label(a) != LabelBoth || st.RedWeight() != 2 {
		t.Error("M1 should yield Both and add red weight")
	}
	// M1 again: node already red.
	if _, err := st.Apply(Move{M1, a}); err == nil {
		t.Error("double M1 should fail")
	}
	// M1 on a node without a blue pebble.
	if _, err := st.Apply(Move{M1, c}); err == nil {
		t.Error("M1 without blue should fail")
	}
	// M1 violating the budget.
	st2 := NewState(g, 1)
	if _, err := st2.Apply(Move{M1, a}); err == nil {
		t.Error("M1 over budget should fail")
	}
	// Out-of-range node.
	if _, err := st.Apply(Move{M1, 99}); err == nil {
		t.Error("out-of-range node should fail")
	}
}

func TestM2Rules(t *testing.T) {
	g, a, b, c := pair(1, 1, 1)
	st := NewState(g, 10)
	must(t, st, Move{M1, a}, Move{M1, b}, Move{M3, c})
	// c is Red (no blue): M2 succeeds.
	cost, err := st.Apply(Move{M2, c})
	if err != nil || cost != 1 {
		t.Fatalf("M2(c): cost=%d err=%v", cost, err)
	}
	if st.Label(c) != LabelBoth {
		t.Error("M2 should yield Both")
	}
	// M2 again: already blue.
	if _, err := st.Apply(Move{M2, c}); err == nil {
		t.Error("M2 on a node with blue should fail")
	}
	// M2 on a node without red.
	st2 := NewState(g, 10)
	if _, err := st2.Apply(Move{M2, a}); err == nil {
		t.Error("M2 without red should fail")
	}
}

func TestM3Rules(t *testing.T) {
	g, a, b, c := pair(1, 1, 1)
	st := NewState(g, 10)
	// Parents not red yet.
	if _, err := st.Apply(Move{M3, c}); err == nil {
		t.Error("M3 without red parents should fail")
	}
	must(t, st, Move{M1, a})
	if _, err := st.Apply(Move{M3, c}); err == nil {
		t.Error("M3 with one red parent should fail")
	}
	must(t, st, Move{M1, b})
	cost, err := st.Apply(Move{M3, c})
	if err != nil || cost != 0 {
		t.Fatalf("M3(c): cost=%d err=%v", cost, err)
	}
	if st.Label(c) != LabelRed {
		t.Error("computed node should be Red")
	}
	// Recompute while red: illegal.
	if _, err := st.Apply(Move{M3, c}); err == nil {
		t.Error("M3 on a red node should fail")
	}
	// M3 on a source: sources are never computed.
	st2 := NewState(g, 10)
	if _, err := st2.Apply(Move{M3, a}); err == nil {
		t.Error("M3 on a source should fail")
	}
	// Budget violation: computing c with both parents held needs 3.
	st3 := NewState(g, 2)
	must(t, st3, Move{M1, a}, Move{M1, b})
	if _, err := st3.Apply(Move{M3, c}); err == nil {
		t.Error("M3 over budget should fail")
	}
}

func TestM3AfterSpillYieldsBoth(t *testing.T) {
	g, a, b, c := pair(1, 1, 1)
	st := NewState(g, 10)
	must(t, st,
		Move{M1, a}, Move{M1, b}, Move{M3, c}, Move{M2, c}, Move{M4, c},
	)
	// c is Blue; recomputing yields Both.
	if _, err := st.Apply(Move{M3, c}); err != nil {
		t.Fatal(err)
	}
	if st.Label(c) != LabelBoth {
		t.Errorf("recomputed node = %v, want Both", st.Label(c))
	}
}

func TestM4Rules(t *testing.T) {
	g, a, _, _ := pair(1, 1, 1)
	st := NewState(g, 10)
	if _, err := st.Apply(Move{M4, a}); err == nil {
		t.Error("M4 without red should fail")
	}
	must(t, st, Move{M1, a})
	cost, err := st.Apply(Move{M4, a})
	if err != nil || cost != 0 {
		t.Fatalf("M4: cost=%d err=%v", cost, err)
	}
	if st.Label(a) != LabelBlue {
		t.Error("M4 on Both should leave Blue (blue pebbles are never deleted)")
	}
	if st.RedWeight() != 0 {
		t.Error("red weight not released")
	}
}

func must(t *testing.T, st *State, moves ...Move) {
	t.Helper()
	for _, m := range moves {
		if _, err := st.Apply(m); err != nil {
			t.Fatalf("%v: %v", m, err)
		}
	}
}

func TestDoneAndSets(t *testing.T) {
	g, a, b, c := pair(1, 1, 1)
	st := NewState(g, 10)
	must(t, st, Move{M1, a}, Move{M1, b}, Move{M3, c})
	if st.Done() {
		t.Error("sink has no blue yet")
	}
	must(t, st, Move{M2, c})
	if !st.Done() {
		t.Error("sink stored; game should be done")
	}
	reds := st.RedSet()
	if len(reds) != 3 {
		t.Errorf("RedSet = %v", reds)
	}
	blues := st.BlueSet()
	if len(blues) != 3 {
		t.Errorf("BlueSet = %v", blues)
	}
}

func TestClone(t *testing.T) {
	g, a, _, _ := pair(1, 1, 1)
	st := NewState(g, 10)
	must(t, st, Move{M1, a})
	c := st.Clone()
	must(t, st, Move{M4, a})
	if c.Label(a) != LabelBoth || c.RedWeight() != 1 {
		t.Error("clone shares state")
	}
}

func TestSimulateFullGame(t *testing.T) {
	g, a, b, c := pair(2, 3, 4)
	sched := Schedule{
		{M1, a}, {M1, b}, {M3, c}, {M2, c}, {M4, a}, {M4, b}, {M4, c},
	}
	stats, err := Simulate(g, 9, sched)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Cost != 2+3+4 {
		t.Errorf("cost = %d, want 9", stats.Cost)
	}
	if stats.InputCost != 5 || stats.OutputCost != 4 {
		t.Errorf("split = %d/%d", stats.InputCost, stats.OutputCost)
	}
	if stats.PeakRedWeight != 9 {
		t.Errorf("peak = %d, want 9", stats.PeakRedWeight)
	}
	if stats.Computations != 1 || stats.Moves[M1] != 2 || stats.Moves[M4] != 3 {
		t.Errorf("move counts wrong: %+v", stats)
	}
}

func TestSimulateDetectsViolations(t *testing.T) {
	g, a, b, c := pair(2, 3, 4)
	// Budget 8 < 9 needed for M3.
	sched := Schedule{{M1, a}, {M1, b}, {M3, c}, {M2, c}}
	if _, err := Simulate(g, 8, sched); err == nil {
		t.Error("budget violation not caught")
	}
	re, ok := func() (e *RuleError, ok bool) {
		_, err := Simulate(g, 8, sched)
		e, ok = err.(*RuleError)
		return
	}()
	if !ok || re.Index != 2 {
		t.Errorf("expected RuleError at step 2, got %v", re)
	}
	// Unfinished game: stopping condition violated.
	if _, err := Simulate(g, 9, Schedule{{M1, a}}); err == nil {
		t.Error("missing sink store not caught")
	}
}

func TestRuleErrorMessage(t *testing.T) {
	g, a, _, _ := pair(1, 1, 1)
	st := NewState(g, 10)
	must(t, st, Move{M1, a})
	_, err := st.Apply(Move{M1, a})
	if err == nil || !strings.Contains(err.Error(), "M1") {
		t.Errorf("error = %v", err)
	}
}

func TestCostWithoutValidation(t *testing.T) {
	g, a, b, c := pair(2, 3, 4)
	sched := Schedule{{M1, a}, {M2, c}, {M1, b}}
	if got := Cost(g, sched); got != 9 {
		t.Errorf("Cost = %d, want 9", got)
	}
}

func TestLowerBoundAndExistence(t *testing.T) {
	g, _, _, _ := pair(2, 3, 4)
	if got := LowerBound(g); got != 9 {
		t.Errorf("LB = %d, want 9", got)
	}
	if MinExistenceBudget(g) != 9 {
		t.Errorf("existence = %d, want 9", MinExistenceBudget(g))
	}
	if !ScheduleExists(g, 9) || ScheduleExists(g, 8) {
		t.Error("ScheduleExists threshold wrong")
	}
}

func TestSnapshots(t *testing.T) {
	g, a, b, c := pair(1, 1, 1)
	sched := Schedule{{M1, a}, {M1, b}, {M3, c}, {M2, c}}
	snaps, err := Snapshots(g, 3, sched)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 5 {
		t.Fatalf("snapshots = %d, want 5 (C0..C4)", len(snaps))
	}
	if snaps[0][a] != LabelBlue || snaps[1][a] != LabelBoth {
		t.Error("snapshot labels wrong")
	}
	if snaps[4][c] != LabelBoth {
		t.Error("final snapshot should have c Both")
	}
	if _, err := Snapshots(g, 1, sched); err == nil {
		t.Error("over-budget schedule should fail")
	}
}

func TestConcatAndString(t *testing.T) {
	s1 := Schedule{{M1, 0}}
	s2 := Schedule{{M2, 1}, {M4, 0}}
	all := Concat(s1, s2)
	if len(all) != 3 {
		t.Fatalf("Concat len = %d", len(all))
	}
	if all.String() != "M1(0) M2(1) M4(0)" {
		t.Errorf("String = %q", all.String())
	}
	if len(Concat()) != 0 {
		t.Error("empty concat")
	}
}

func TestNewStateWithLabels(t *testing.T) {
	g, a, b, c := pair(1, 1, 1)
	labels := []Label{LabelRed, LabelBlue, LabelNone}
	st, err := NewStateWithLabels(g, 10, labels)
	if err != nil {
		t.Fatal(err)
	}
	if st.RedWeight() != 1 {
		t.Errorf("red weight = %d", st.RedWeight())
	}
	// Over-budget initial state is rejected.
	if _, err := NewStateWithLabels(g, 0, labels); err == nil {
		t.Error("over-budget initial state accepted")
	}
	// Wrong length.
	if _, err := NewStateWithLabels(g, 10, labels[:2]); err == nil {
		t.Error("short label vector accepted")
	}
	// A fragment can proceed from the custom state: load b, compute c.
	stats, err := SimulateFrom(st, Schedule{{M1, b}, {M3, c}})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Cost != 1 || st.Label(c) != LabelRed {
		t.Errorf("fragment stats %+v label %v", stats, st.Label(c))
	}
	_ = a
}

func TestSimulateFromReportsErrors(t *testing.T) {
	g, a, _, _ := pair(1, 1, 1)
	st := NewState(g, 10)
	if _, err := SimulateFrom(st, Schedule{{M4, a}}); err == nil {
		t.Error("illegal fragment move not caught")
	}
}
