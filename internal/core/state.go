package core

import (
	"fmt"

	"wrbpg/internal/cdag"
)

// State is a mutable game snapshot C_i: a label per node plus the
// running total weight of red pebbles. It applies moves one at a time,
// enforcing the rules of the game and the weighted red pebble
// constraint.
type State struct {
	g         *cdag.Graph
	budget    cdag.Weight
	labels    []Label
	redWeight cdag.Weight
}

// NewState returns the starting snapshot C_0 for graph g under the
// given weighted budget: every source node holds a blue pebble, all
// other nodes are empty.
func NewState(g *cdag.Graph, budget cdag.Weight) *State {
	s := &State{g: g, budget: budget, labels: make([]Label, g.Len())}
	for _, v := range g.Sources() {
		s.labels[v] = LabelBlue
	}
	return s
}

// Graph returns the underlying CDAG.
func (s *State) Graph() *cdag.Graph { return s.g }

// Budget returns the weighted red pebble budget B.
func (s *State) Budget() cdag.Weight { return s.budget }

// Label returns λ_v for node v.
func (s *State) Label(v cdag.NodeID) Label { return s.labels[v] }

// RedWeight returns Σ_{v∈R(C)} w_v, the weight currently held in fast
// memory.
func (s *State) RedWeight() cdag.Weight { return s.redWeight }

// RuleError describes an illegal move: which rule of the game it
// violates and the state it was attempted in.
type RuleError struct {
	Move   Move
	Index  int // position in the schedule, -1 when applied ad hoc
	Reason string
}

func (e *RuleError) Error() string {
	if e.Index >= 0 {
		return fmt.Sprintf("wrbpg: illegal move %s at step %d: %s", e.Move, e.Index, e.Reason)
	}
	return fmt.Sprintf("wrbpg: illegal move %s: %s", e.Move, e.Reason)
}

// Apply performs a single move, mutating the state. It returns the
// weighted I/O cost incurred by the move (w_v for M1/M2, zero for
// M3/M4) or a *RuleError if the move is illegal in the current state.
func (s *State) Apply(m Move) (cdag.Weight, error) {
	v := m.Node
	if v < 0 || int(v) >= len(s.labels) {
		return 0, &RuleError{Move: m, Index: -1, Reason: "node out of range"}
	}
	w := s.g.Weight(v)
	l := s.labels[v]
	switch m.Kind {
	case M1:
		if !l.HasBlue() {
			return 0, &RuleError{Move: m, Index: -1, Reason: "M1 requires a blue pebble on the node"}
		}
		if l.HasRed() {
			return 0, &RuleError{Move: m, Index: -1, Reason: "M1 on a node that already holds a red pebble"}
		}
		if s.redWeight+w > s.budget {
			return 0, &RuleError{Move: m, Index: -1, Reason: fmt.Sprintf("weighted red constraint violated: %d+%d > budget %d", s.redWeight, w, s.budget)}
		}
		s.labels[v] = LabelBoth
		s.redWeight += w
		return w, nil
	case M2:
		if !l.HasRed() {
			return 0, &RuleError{Move: m, Index: -1, Reason: "M2 requires a red pebble on the node"}
		}
		if l.HasBlue() {
			return 0, &RuleError{Move: m, Index: -1, Reason: "M2 on a node that already holds a blue pebble"}
		}
		s.labels[v] = LabelBoth
		return w, nil
	case M3:
		if l.HasRed() {
			return 0, &RuleError{Move: m, Index: -1, Reason: "M3 on a node that already holds a red pebble"}
		}
		if s.g.IsSource(v) {
			return 0, &RuleError{Move: m, Index: -1, Reason: "M3 on a source node (inputs are not computed)"}
		}
		for _, p := range s.g.Parents(v) {
			if !s.labels[p].HasRed() {
				return 0, &RuleError{Move: m, Index: -1, Reason: fmt.Sprintf("M3 requires red pebbles on all parents; parent %d is %s", p, s.labels[p])}
			}
		}
		if s.redWeight+w > s.budget {
			return 0, &RuleError{Move: m, Index: -1, Reason: fmt.Sprintf("weighted red constraint violated: %d+%d > budget %d", s.redWeight, w, s.budget)}
		}
		if l.HasBlue() {
			s.labels[v] = LabelBoth
		} else {
			s.labels[v] = LabelRed
		}
		s.redWeight += w
		return 0, nil
	case M4:
		if !l.HasRed() {
			return 0, &RuleError{Move: m, Index: -1, Reason: "M4 requires a red pebble on the node"}
		}
		if l.HasBlue() {
			s.labels[v] = LabelBlue
		} else {
			s.labels[v] = LabelNone
		}
		s.redWeight -= w
		return 0, nil
	default:
		return 0, &RuleError{Move: m, Index: -1, Reason: "unknown move kind"}
	}
}

// Done reports whether the stopping condition holds: every sink node
// carries a blue pebble.
func (s *State) Done() bool {
	for v := 0; v < s.g.Len(); v++ {
		id := cdag.NodeID(v)
		if s.g.IsSink(id) && !s.labels[id].HasBlue() {
			return false
		}
	}
	return true
}

// RedSet returns R(C): the nodes currently holding red pebbles, in ID
// order.
func (s *State) RedSet() []cdag.NodeID {
	var out []cdag.NodeID
	for v, l := range s.labels {
		if l.HasRed() {
			out = append(out, cdag.NodeID(v))
		}
	}
	return out
}

// BlueSet returns B(C): the nodes currently holding blue pebbles, in
// ID order.
func (s *State) BlueSet() []cdag.NodeID {
	var out []cdag.NodeID
	for v, l := range s.labels {
		if l.HasBlue() {
			out = append(out, cdag.NodeID(v))
		}
	}
	return out
}

// Clone returns an independent copy of the state.
func (s *State) Clone() *State {
	labels := make([]Label, len(s.labels))
	copy(labels, s.labels)
	return &State{g: s.g, budget: s.budget, labels: labels, redWeight: s.redWeight}
}
