package core

import (
	"fmt"

	"wrbpg/internal/cdag"
)

// NewStateWithLabels returns a snapshot with caller-chosen labels,
// used to validate schedule fragments that begin mid-computation
// (e.g. a tile with an initial memory state per Section 4.1). The
// label vector must respect the budget; sources keep their blue
// pebbles implicitly only if the caller says so — the labels are
// taken verbatim.
func NewStateWithLabels(g *cdag.Graph, budget cdag.Weight, labels []Label) (*State, error) {
	if len(labels) != g.Len() {
		return nil, fmt.Errorf("wrbpg: label vector length %d != node count %d", len(labels), g.Len())
	}
	s := &State{g: g, budget: budget, labels: append([]Label(nil), labels...)}
	for v, l := range labels {
		if l.HasRed() {
			s.redWeight += g.Weight(cdag.NodeID(v))
		}
	}
	if s.redWeight > budget {
		return nil, fmt.Errorf("wrbpg: initial red weight %d exceeds budget %d", s.redWeight, budget)
	}
	return s, nil
}

// SimulateFrom replays a schedule from an arbitrary starting state,
// returning stats. It does not check the stopping condition — the
// caller decides what "done" means for a fragment.
func SimulateFrom(st *State, s Schedule) (Stats, error) {
	var stats Stats
	stats.PeakRedWeight = st.RedWeight()
	for i, m := range s {
		c, err := st.Apply(m)
		if err != nil {
			re := err.(*RuleError)
			re.Index = i
			return stats, re
		}
		stats.Cost += c
		switch m.Kind {
		case M1:
			stats.InputCost += c
		case M2:
			stats.OutputCost += c
		case M3:
			stats.Computations++
		}
		stats.Moves[m.Kind]++
		if st.RedWeight() > stats.PeakRedWeight {
			stats.PeakRedWeight = st.RedWeight()
		}
	}
	return stats, nil
}
