// Package serve is the HTTP/JSON serving layer over the hardened
// solve facade: wrbpgd's request handlers, the content-addressed
// schedule cache wiring, solver admission control and serving metrics.
//
// The request path is: decode + validate (structured 400s, no panics)
// → canonical solve.Instance → content-addressed key → schedcache.Do.
// A cache hit answers without touching the solver; a miss runs exactly
// one solve per key (singleflight), admitted through a deadline-aware
// bounded queue: the expected queue wait is estimated from the live
// slot-hold histogram, work that cannot finish inside its deadline is
// rejected with a structured 429 + Retry-After, a saturated queue
// degrades requests straight to the baseline scheduler (flagged
// fallback_cause="shed"), and a fallback-storm circuit breaker keeps
// thrashing traffic off the optimal tier entirely (docs/ROBUSTNESS.md,
// "Overload policy"). Admitted solves run under a per-request deadline
// mapped onto guard.Limits, degrading to the baseline at the deadline
// rather than failing. Only optimal results are cached — a degraded
// fallback is an artifact of that request's time budget, and a later
// request with more headroom deserves a fresh attempt.
//
// Endpoints:
//
//	POST /v1/schedule        solve one instance (cache-backed)
//	POST /v1/schedule/batch  fan out independent solves, partial failure
//	POST /v1/schedule/sweep  many budgets, one warm solver session
//	POST /v1/schedule/patch  weight deltas + budgets, incremental re-solve
//	GET  /v1/lowerbound      Proposition 2.3/2.4 bounds, no solve
//	GET  /v1/trace/{id}      span tree of a traced request
//	GET  /healthz            liveness
//	GET  /readyz             readiness (503 while draining or overloaded)
//	GET  /statsz             cache/solver/latency/session counters
//	GET  /metrics            Prometheus text exposition
//
// Any request carrying "X-Wrbpg-Trace: on" is traced: the solver
// phases (canonicalize, cache, build, admission, solve, simulate,
// fallback) record spans, the response carries the trace ID in
// X-Wrbpg-Trace-Id, and the completed span tree is retrievable at
// GET /v1/trace/{id} (add ?format=chrome for a chrome://tracing /
// Perfetto trace_event array). Untraced requests pay one context
// lookup per phase and zero tracing allocations.
//
// The sweep path keeps a pool of warm solver sessions keyed by the
// instance's budget-free ShapeKey: the DP memos share sub-budget cells
// across budget queries, so answering k budgets costs roughly one cold
// solve, and answering them again is pure memo hits. Per-request
// workspaces recycle through a sync.Pool, so steady-state sweep
// traffic performs zero allocations per warm query (see
// docs/PERFORMANCE.md, "The sweep engine").
//
// The patch path shares that pool, keyed by the delta-free
// BaseShapeKey: POST /v1/schedule/patch applies per-node weight deltas
// to the pooled base session with dependency-tracked memo invalidation
// and answers its budget list from the surviving cells — an
// incremental re-solve instead of a cold one (see docs/PERFORMANCE.md,
// "The incremental engine").
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"wrbpg/internal/cdag"

	"wrbpg/internal/cluster"
	"wrbpg/internal/core"
	"wrbpg/internal/guard"
	"wrbpg/internal/obs"
	"wrbpg/internal/obs/slo"
	"wrbpg/internal/par"
	"wrbpg/internal/schedcache"
	"wrbpg/internal/serve/wire"
	"wrbpg/internal/solve"
)

// Trace opt-in request header and response trace-ID header.
const (
	TraceHeader   = "X-Wrbpg-Trace"
	TraceIDHeader = "X-Wrbpg-Trace-Id"
)

// Options configures a Server; zero fields take the stated defaults.
type Options struct {
	// CacheShards (default 16) and CachePerShard (default 64) size the
	// schedule cache: total capacity is the product.
	CacheShards   int
	CachePerShard int
	// MaxInflight bounds concurrent solver invocations (default
	// 2×GOMAXPROCS). Cache hits are not counted — they never solve.
	MaxInflight int
	// MaxQueue bounds requests queued for a solver slot when every
	// slot is busy (default 8×MaxInflight; negative = never queue,
	// shed the moment every slot is busy). Queued requests whose
	// deadline budget cannot survive the estimated wait are shed up
	// front with a 429 and a Retry-After derived from the queue drain
	// time; see docs/ROBUSTNESS.md, "Overload policy".
	MaxQueue int
	// Breaker* configure the fallback-storm circuit breaker: when at
	// least BreakerMinSamples of the last BreakerWindow solves exist
	// and the fallback rate among them reaches BreakerThreshold, the
	// optimal tier is presumed thrashing and requests skip straight to
	// the baseline for BreakerCooldown, after which a single half-open
	// probe decides whether to close again. Defaults: window 64
	// (negative disables the breaker), threshold 0.5, min samples 16,
	// cooldown 2s.
	BreakerWindow     int
	BreakerThreshold  float64
	BreakerMinSamples int
	BreakerCooldown   time.Duration
	// DefaultTimeout is the per-solve deadline when the request does
	// not name one (default 2s); MaxTimeout clamps request-supplied
	// deadlines (default 30s).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// Limits carries the resource ceilings (memo entries, search
	// states) applied to every solve; its Deadline field is ignored —
	// deadlines are derived per request.
	Limits guard.Limits
	// MaxBatch bounds the number of requests in one batch call
	// (default 64); MaxBodyBytes bounds request bodies (default 8 MiB).
	MaxBatch     int
	MaxBodyBytes int64
	// MaxSweepBudgets bounds the budget list of one sweep or patch
	// request (default 128). SweepSessions caps the warm-session pool
	// backing POST /v1/schedule/sweep and /v1/schedule/patch (default
	// 32, LRU-evicted). MaxPatchDeltas bounds the delta list of one
	// patch request (default 256).
	MaxSweepBudgets int
	SweepSessions   int
	MaxPatchDeltas  int
	// TraceBuffer caps the completed traces retained for
	// GET /v1/trace/{id} (default 64, oldest evicted first).
	TraceBuffer int
	// Logger, when non-nil, receives the structured request log (one
	// line per API request with status, latency, trace ID and the
	// CostMeta fields) and the cluster peer-fill lines. Nil keeps the
	// serving layer silent — the pre-logging default, so embedded
	// servers and tests opt in explicitly.
	Logger *slog.Logger
	// SLOLatencyP99 is the latency objective's threshold: the SLO
	// engine counts a request slower than this as latency-bad (default
	// 250ms). SLOAvailability is the availability objective's target
	// fraction of requests not shed (429) or failed (5xx); default
	// 0.999. Both feed GET /v1/slo, the /readyz detail section and the
	// wrbpg_slo_* gauge families.
	SLOLatencyP99   time.Duration
	SLOAvailability float64
	// Cluster, when non-nil, enables cluster mode: local cache misses
	// whose content-addressed key the consistent-hash ring assigns to
	// another replica are peer-filled from that owner before the local
	// solver runs, and POST /v1/peer/schedule answers the other
	// replicas' fills (docs/CLUSTER.md). The caller owns the cluster's
	// health-loop lifecycle (cluster.Start); the server registers its
	// metrics and routes through it.
	Cluster *cluster.Cluster
}

// withDefaults resolves zero fields.
func (o Options) withDefaults() Options {
	if o.CacheShards <= 0 {
		o.CacheShards = 16
	}
	if o.CachePerShard <= 0 {
		o.CachePerShard = 64
	}
	if o.MaxInflight <= 0 {
		o.MaxInflight = 2 * runtime.GOMAXPROCS(0)
	}
	if o.MaxQueue == 0 {
		o.MaxQueue = 8 * o.MaxInflight
	}
	if o.MaxQueue < 0 {
		o.MaxQueue = 0
	}
	if o.BreakerWindow == 0 {
		o.BreakerWindow = 64
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = 0.5
	}
	if o.BreakerMinSamples <= 0 {
		o.BreakerMinSamples = 16
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 2 * time.Second
	}
	if o.DefaultTimeout <= 0 {
		o.DefaultTimeout = 2 * time.Second
	}
	if o.MaxTimeout <= 0 {
		o.MaxTimeout = 30 * time.Second
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 64
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 8 << 20
	}
	if o.MaxSweepBudgets <= 0 {
		o.MaxSweepBudgets = 128
	}
	if o.SweepSessions <= 0 {
		o.SweepSessions = 32
	}
	if o.MaxPatchDeltas <= 0 {
		o.MaxPatchDeltas = 256
	}
	if o.TraceBuffer <= 0 {
		o.TraceBuffer = 64
	}
	if o.SLOLatencyP99 <= 0 {
		o.SLOLatencyP99 = 250 * time.Millisecond
	}
	if o.SLOAvailability <= 0 || o.SLOAvailability >= 1 {
		o.SLOAvailability = 0.999
	}
	return o
}

// Server is the wrbpgd request handler set. Create with New.
type Server struct {
	opts  Options
	cache *schedcache.Cache[*wire.ScheduleResult]
	// sessions is the warm solver-session pool keyed by the instance
	// ShapeKey (budget-free identity); one LRU shard keeps the live
	// count exactly at SweepSessions.
	sessions *schedcache.Cache[*sessionEntry]
	// wsPool recycles sweep workspaces (budget/cost/item buffers), so
	// steady-state sweep traffic allocates nothing per warm query.
	wsPool sync.Pool
	// adm is the deadline-aware admission queue in front of the solver
	// slots; brk is the fallback-storm breaker (nil when disabled).
	adm *admission
	brk *breaker
	// draining flips /readyz to 503 ahead of a graceful shutdown.
	draining atomic.Bool
	// cluster is the replica fleet view (nil outside cluster mode).
	cluster *cluster.Cluster
	reg     *obs.Registry
	m       *metrics
	traces  *obs.TraceStore
	// slo tracks the latency and availability objectives over sliding
	// windows; every API request feeds it through withRequestObs.
	slo *slo.Engine
	// log is the structured request logger (nil = silent).
	log   *slog.Logger
	start time.Time
}

// New builds a Server with the given options.
func New(opts Options) *Server {
	opts = opts.withDefaults()
	reg := obs.NewRegistry()
	s := &Server{
		opts:     opts,
		cache:    schedcache.New[*wire.ScheduleResult](opts.CacheShards, opts.CachePerShard),
		sessions: schedcache.New[*sessionEntry](1, opts.SweepSessions),
		cluster:  opts.Cluster,
		reg:      reg,
		m:        newMetrics(reg),
		traces:   obs.NewTraceStore(opts.TraceBuffer),
		slo:      slo.New(slo.Config{LatencyTarget: opts.SLOLatencyP99, Availability: opts.SLOAvailability}),
		log:      opts.Logger,
		start:    time.Now(),
	}
	s.slo.RegisterMetrics(reg)
	s.adm = &admission{
		slots:    make(chan struct{}, opts.MaxInflight),
		maxQueue: opts.MaxQueue,
		depth:    s.m.queueDepth,
		hold:     s.m.holdUS,
	}
	if opts.BreakerWindow > 0 {
		s.brk = newBreaker(opts.BreakerWindow, opts.BreakerMinSamples,
			opts.BreakerThreshold, opts.BreakerCooldown, s.m.breakerState, s.m.breakerTrips)
	}
	s.registerFuncs()
	s.wsPool.New = func() any {
		s.m.wsAllocs.Inc()
		return &sweepWorkspace{}
	}
	return s
}

// Handler returns the HTTP handler serving every endpoint.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/schedule", s.handleSchedule)
	mux.HandleFunc("/v1/schedule/batch", s.handleBatch)
	mux.HandleFunc("/v1/schedule/sweep", s.handleSweep)
	mux.HandleFunc("/v1/schedule/patch", s.handlePatch)
	mux.HandleFunc(cluster.PeerPath, s.handlePeerSchedule)
	mux.HandleFunc("/v1/lowerbound", s.handleLowerBound)
	mux.HandleFunc("/v1/trace/", s.handleTrace)
	mux.HandleFunc("/v1/slo", s.handleSLO)
	mux.HandleFunc("/v1/cluster/stats", s.handleClusterStats)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/statsz", s.handleStatsz)
	mux.Handle("/metrics", s.MetricsHandler())
	return s.withTracing(s.withRequestObs(mux))
}

// MetricsHandler serves the merged Prometheus text exposition: this
// server's registry plus the process-wide solver registry.
func (s *Server) MetricsHandler() http.Handler {
	return obs.Handler(s.reg, obs.Default)
}

// withTracing wraps the endpoint mux with the per-request trace
// lifecycle: a request carrying "X-Wrbpg-Trace: on" gets a fresh
// trace on its context and a root span covering the whole handler;
// the completed trace lands in the retrieval buffer. Untraced
// requests pass through with zero overhead.
func (s *Server) withTracing(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.Header.Get(TraceHeader) {
		case "on", "1", "true":
		default:
			h.ServeHTTP(w, r)
			return
		}
		s.m.traced.Inc()
		tr := obs.NewTrace()
		ctx, root := obs.StartSpan(obs.WithTrace(r.Context(), tr), "request")
		root.SetAttr("method", r.Method)
		root.SetAttr("path", r.URL.Path)
		w.Header().Set(TraceIDHeader, tr.ID())
		h.ServeHTTP(w, r.WithContext(ctx))
		root.End()
		s.traces.Put(tr)
	})
}

// handleTrace serves GET /v1/trace/{id}: the span tree of a completed
// traced request, or its chrome://tracing event array with
// ?format=chrome.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeErr(w, wire.Errorf(http.StatusMethodNotAllowed, "GET required"))
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/v1/trace/")
	if id == "" || strings.Contains(id, "/") {
		s.writeErr(w, wire.Errorf(http.StatusBadRequest, "want /v1/trace/{id}"))
		return
	}
	tr, ok := s.traces.Get(id)
	if !ok {
		s.writeErr(w, wire.Errorf(http.StatusNotFound,
			"trace %q not found (buffer keeps the last %d traced requests)", id, s.opts.TraceBuffer))
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "chrome":
		writeJSON(w, http.StatusOK, tr.ChromeTrace())
	case "", "tree":
		writeJSON(w, http.StatusOK, tr.Tree())
	default:
		s.writeErr(w, wire.Errorf(http.StatusBadRequest,
			"unknown format %q: want \"tree\" (default) or \"chrome\"", format))
	}
}

// CacheStats exposes the cache counters (for tests and the daemon's
// shutdown log).
func (s *Server) CacheStats() schedcache.Stats { return s.cache.Snapshot() }

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // nothing useful to do mid-response
}

// writeErr writes a structured error body; every non-2xx response
// goes through here, so clients always get {"status","error"}. A 429
// is server pushback, not a malformed request, so it carries its
// Retry-After header instead of counting into bad_requests.
func (s *Server) writeErr(w http.ResponseWriter, e *wire.Error) {
	if e.Status == http.StatusTooManyRequests {
		if e.RetryAfterS > 0 {
			w.Header().Set("Retry-After", strconv.FormatInt(e.RetryAfterS, 10))
		}
	} else if e.Status >= 400 && e.Status < 500 {
		s.m.badRequests.Inc()
	}
	writeJSON(w, e.Status, e)
}

// shedErr builds the structured 429 for a shed decision: the queue
// drain estimate rides in both the Retry-After header (set by
// writeErr) and the JSON body.
func shedErr(d *shedDecision) *wire.Error {
	return wire.Errorf(http.StatusTooManyRequests,
		"overloaded (%s): estimated queue wait %v; retry after %ds",
		d.mode, d.estWait.Round(time.Millisecond), d.retryAfter).
		WithReason("shed").WithRetryAfter(d.retryAfter)
}

// asWireErr maps an internal error onto a structured API error:
// validation failures stay 400s, client abandonment is 499, anything
// else is a 500.
func asWireErr(err error) *wire.Error {
	var we *wire.Error
	if errors.As(err, &we) {
		return we
	}
	if errors.Is(err, guard.ErrCanceled) || errors.Is(err, context.Canceled) {
		return wire.Errorf(499, "client closed request").WithReason("canceled")
	}
	return wire.Errorf(http.StatusInternalServerError, "%v", err)
}

// decodeStrict decodes one JSON value, rejecting unknown fields and
// trailing garbage, with the body size capped.
func decodeStrict(w http.ResponseWriter, r *http.Request, maxBytes int64, v any) error {
	r.Body = http.MaxBytesReader(w, r.Body, maxBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return wire.Errorf(http.StatusBadRequest, "malformed request body: %v", err)
	}
	if dec.More() {
		return wire.Errorf(http.StatusBadRequest, "trailing data after request body")
	}
	return nil
}

// handleSchedule serves POST /v1/schedule.
func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeErr(w, wire.Errorf(http.StatusMethodNotAllowed, "POST required"))
		return
	}
	s.m.reqSchedule.Inc()
	var req wire.ScheduleRequest
	if err := decodeStrict(w, r, s.opts.MaxBodyBytes, &req); err != nil {
		s.writeErr(w, asWireErr(err))
		return
	}
	// A hop-marked request came from another replica (or a client
	// playing one): treat it with peer semantics so forwards never
	// chain, whatever path it arrived on.
	peer := r.Header.Get(cluster.HopHeader) != ""
	res, werr := s.scheduleAs(r.Context(), &req, peer, "")
	if werr != nil {
		s.writeErr(w, werr)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// schedule is the shared single-request path (also used per batch
// item): validate, canonicalize, cache-or-solve, stamp per-request
// fields.
func (s *Server) schedule(ctx context.Context, req *wire.ScheduleRequest) (*wire.ScheduleResult, *wire.Error) {
	return s.scheduleAs(ctx, req, false, "")
}

// scheduleAs is schedule with cluster semantics: peerCall marks a
// replica-to-replica request (never forward again, shed with 429
// instead of degrading on queue saturation), and wantKey, when
// non-empty, is the forwarder's content-addressed key — a mismatch
// against the locally computed key is a 400, so canonicalization skew
// between replicas fails loudly instead of silently splitting the
// fleet's cache.
func (s *Server) scheduleAs(ctx context.Context, req *wire.ScheduleRequest, peerCall bool, wantKey string) (*wire.ScheduleResult, *wire.Error) {
	start := time.Now()
	if req.BudgetBits < 1 {
		return nil, wire.Errorf(http.StatusBadRequest,
			"budget_bits must be positive, got %d", req.BudgetBits)
	}
	_, csp := obs.StartSpan(ctx, "canonicalize")
	inst, err := req.Instance()
	csp.End()
	if err != nil {
		return nil, wire.Errorf(http.StatusBadRequest, "%v", err)
	}
	budget := req.BudgetBits
	key := inst.Key(budget)
	if wantKey != "" && wantKey != key {
		return nil, wire.Errorf(http.StatusBadRequest,
			"peer key mismatch: forwarder sent %s, owner computed %s (replica version skew?)", wantKey, key)
	}

	// The counts sink rides the solve context: every guard.Checker the
	// request drives (one-shot solvers, anytime workers) tees its
	// TakeCounts delta here, feeding the response's CostMeta without any
	// solver API change.
	cs := &guard.CountsSink{}
	cctx, sp := obs.StartSpan(guard.WithSink(ctx, cs), "cache")
	cached, state, err := s.cache.Do(key, func() (*wire.ScheduleResult, bool, error) {
		return s.solveCold(cctx, req, &inst, key, budget, peerCall)
	})
	sp.SetAttr("disposition", state.String())
	sp.End()
	if err != nil {
		return nil, asWireErr(err)
	}

	// Stamp the per-request view without mutating the cached entry:
	// cache disposition, this request's elapsed time, and the move
	// list only when asked for.
	res := cached.Clone()
	res.Cache = state.String()
	res.CacheKey = key
	if state != schedcache.Miss {
		res.ElapsedUS = wire.Elapsed(start)
		// This request paid a cache lookup, not the cached entry's solve:
		// its cost block says so instead of repeating the leader's meter.
		tier := wire.TierCache
		if state == schedcache.Shared {
			tier = wire.TierShared
		}
		res.Cost = &wire.CostMeta{SourceTier: tier}
	}
	noteCost(ctx, res.Cost)
	if !req.IncludeMoves {
		res.Schedule = nil
	} else if !peerCall {
		// Cached cdag schedules live in canonical node numbering (the
		// cache key is isomorphism-invariant); express the moves back in
		// this requester's numbering. Peer calls stay canonical — the
		// forwarder caches the fill and remaps at its own edge.
		res.Schedule = inst.RequestSchedule(res.Schedule)
	}
	return res, nil
}

// minDegradeBudget is the smallest deadline budget worth a degraded
// baseline answer: below it even the linear-time baseline plus
// response encoding risks blowing the deadline, so the request is
// shed with a 429 instead.
const minDegradeBudget = 5 * time.Millisecond

// solveCold is the cache-miss path, structured as a degradation
// ladder. Tier −1 (cluster mode): if the consistent-hash ring assigns
// the key to another replica, offer the miss to that owner first
// (bounded by the peer-timeout slice of the deadline) — a filled
// answer costs this replica no solver slot at all; on peer error or
// shed, continue down the local ladder. Tier 0: the fallback-storm
// breaker — while it is open the optimal tier is presumed thrashing
// and the request goes straight to the baseline. Tier 1:
// deadline-aware admission — the queue wait is estimated from the live
// slot-hold histogram, doomed work is rejected up front, and the
// actual wait is capped by the request's own deadline budget. Tier 2:
// a queue-full request with deadline budget left gets the baseline
// answer now instead of a 429. Tier 3: an admitted solve runs with
// whatever deadline budget the queue wait left over. The bool reports
// cacheability — only optimal results are stored.
//
// peerCall marks a replica-to-replica request: tier −1 is skipped (a
// fill is exactly one hop) and the degrading tiers 0 and 2 shed with a
// 429 instead — the forwarder holds the request's real deadline budget
// and decides between its own baseline and propagating the shed.
func (s *Server) solveCold(ctx context.Context, req *wire.ScheduleRequest, inst *solve.Instance, key string, budget int64, peerCall bool) (*wire.ScheduleResult, bool, error) {
	_, bsp := obs.StartSpan(ctx, "build")
	p, g, err := inst.Build()
	bsp.End()
	if err != nil {
		return nil, false, wire.Errorf(http.StatusBadRequest, "%v", err)
	}
	if min := core.MinExistenceBudget(g); budget < min {
		return nil, false, wire.Errorf(http.StatusBadRequest,
			"budget %d below existence bound %d (Proposition 2.3): no schedule exists", budget, min)
	}

	// Map the request deadline onto the solve budget: the requested
	// (or default) timeout, clamped by the server maximum and by the
	// transport context's own deadline.
	want := s.opts.DefaultTimeout
	if req.TimeoutMS > 0 {
		want = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	deadline := guard.ClampDeadline(ctx, want, s.opts.MaxTimeout)

	if !peerCall && s.cluster != nil {
		if owner, local := s.cluster.Route(key); !local {
			if res, cacheable, err, handled := s.peerFill(ctx, owner, key, req, deadline); handled {
				return res, cacheable, err
			}
		}
	}

	if !s.brk.Allow() {
		s.m.shed(shedBreaker)
		if peerCall {
			return nil, false, wire.Errorf(http.StatusTooManyRequests,
				"fallback-storm breaker open").WithReason("shed").WithRetryAfter(1)
		}
		return s.solveShed(ctx, p, inst.Label(), budget, wire.TierBreaker)
	}

	_, asp := obs.StartSpan(ctx, "admission")
	tk, shed := s.adm.Acquire(ctx, deadline)
	if shed != nil {
		asp.SetAttr("shed", shed.mode)
		asp.End()
		s.brk.Cancel()
		switch shed.mode {
		case shedCanceled:
			s.m.shed(shedCanceled)
			return nil, false, guard.Wrap(ctx.Err())
		case shedQueueFull:
			if !peerCall && (deadline == 0 || deadline >= minDegradeBudget) {
				s.m.shed(shedDegraded)
				return s.solveShed(ctx, p, inst.Label(), budget, wire.TierDegraded)
			}
			s.m.shed(shedQueueFull)
			return nil, false, shedErr(shed)
		default: // doomed: the wait estimate (or the wait itself) ate the deadline
			s.m.shed(shedDoomed)
			return nil, false, shedErr(shed)
		}
	}
	asp.End()
	defer tk.Release()

	// Queue time and solve time share the deadline budget: solve with
	// what the wait left over, floored so the solver can still unwind
	// cleanly into its own deadline fallback.
	lim := s.opts.Limits
	if deadline > 0 {
		remaining := deadline - tk.waited
		if remaining < time.Millisecond {
			remaining = time.Millisecond
		}
		lim.Deadline = remaining
	}
	s.m.inflight.Add(1)
	sctx, ssp := obs.StartSpan(ctx, "solve")
	out, err := solve.Run(sctx, p, budget, lim)
	ssp.SetAttr("source", out.Source.String())
	ssp.End()
	s.m.inflight.Add(-1)
	fallback := out.Source == solve.SourceFallback
	s.m.observeSolve(out.Elapsed, fallback, err != nil, solve.FallbackReason(out.Err))
	if err != nil {
		// Cancellation says nothing about solver health; anything else
		// that reached the solver and failed counts as a degradation
		// signal for the breaker.
		if errors.Is(err, guard.ErrCanceled) || errors.Is(err, context.Canceled) {
			s.brk.Cancel()
		} else {
			s.brk.Record(true)
		}
		return nil, false, err
	}
	s.brk.Record(fallback)
	if out.Anytime != nil {
		s.m.observeAnytime(out.Anytime)
	}
	res := wire.NewScheduleResult(inst.Label(), out, core.LowerBound(g), true)
	res.Cost = costMeta(wire.TierSolve, tk.waited, out.Elapsed, guard.SinkFrom(ctx))
	return res, cacheableSource(res), nil
}

// costMeta assembles the cost block for a fresh (uncached) answer from
// the admission wait, the solver wall time and the request's teed
// solver-progress counters.
func costMeta(tier string, wait, wall time.Duration, cs *guard.CountsSink) *wire.CostMeta {
	c := cs.Snapshot()
	return &wire.CostMeta{
		SourceTier:       tier,
		QueueWaitUS:      wait.Microseconds(),
		SolveWallUS:      wall.Microseconds(),
		StatesExpanded:   c.States,
		MemoHits:         c.MemoHits,
		MemoMisses:       c.MemoEntries,
		CellsInvalidated: c.CellsInvalidated,
		CellsReused:      c.CellsReused,
	}
}

// cacheableSource decides whether a solve result may enter the
// schedule cache (and be accepted from a peer fill): optimal results
// always; anytime results only when the search drained its frontier —
// Complete certifies the cost optimal within the no-recompute
// subspace, so serving it from cache repeats the best answer rather
// than freezing an arbitrary deadline's incumbent.
func cacheableSource(res *wire.ScheduleResult) bool {
	if res.Source == solve.SourceOptimal.String() {
		return true
	}
	return res.Source == solve.SourceAnytime.String() && res.Anytime != nil && res.Anytime.Complete
}

// solveShed is the ladder's bottom tier: answer from the baseline
// scheduler without touching the optimal tier or the solver slots.
// The result is flagged fallback with cause "shed" and is never
// cached — the next request with headroom deserves the real solve.
func (s *Server) solveShed(ctx context.Context, p solve.Problem, label string, budget int64, tier string) (*wire.ScheduleResult, bool, error) {
	sctx, ssp := obs.StartSpan(ctx, "solve")
	out, err := solve.Degraded(sctx, p, cdag.Weight(budget))
	ssp.SetAttr("source", out.Source.String())
	ssp.SetAttr("shed", "true")
	ssp.End()
	s.m.observeSolve(out.Elapsed, true, err != nil, solve.FallbackReason(out.Err))
	if err != nil {
		return nil, false, err
	}
	res := wire.NewScheduleResult(label, out, core.LowerBound(p.G), true)
	res.Cost = costMeta(tier, 0, out.Elapsed, guard.SinkFrom(ctx))
	return res, false, nil
}

// handleBatch serves POST /v1/schedule/batch: independent fan-out over
// the worker pool with per-item (partial) failure reporting.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeErr(w, wire.Errorf(http.StatusMethodNotAllowed, "POST required"))
		return
	}
	s.m.reqBatch.Inc()
	var req wire.BatchRequest
	if err := decodeStrict(w, r, s.opts.MaxBodyBytes, &req); err != nil {
		s.writeErr(w, asWireErr(err))
		return
	}
	if len(req.Requests) == 0 {
		s.writeErr(w, wire.Errorf(http.StatusBadRequest, "empty batch"))
		return
	}
	if len(req.Requests) > s.opts.MaxBatch {
		s.writeErr(w, wire.Errorf(http.StatusBadRequest,
			"batch of %d exceeds limit %d", len(req.Requests), s.opts.MaxBatch))
		return
	}

	ctx := r.Context()
	idx := make([]int, len(req.Requests))
	for i := range idx {
		idx[i] = i
	}
	// Each item reports success or failure in place; the pool function
	// never returns an error, so one malformed item cannot abort its
	// siblings (partial-failure reporting). Solver concurrency is
	// bounded by the semaphore inside the shared path, so the pool
	// width only bounds decode/validate parallelism.
	items, perr := par.MapCtx(ctx, s.opts.MaxInflight, idx, func(i int) (wire.BatchItem, error) {
		s.m.reqSchedule.Inc()
		res, werr := s.schedule(ctx, &req.Requests[i])
		if werr != nil {
			return wire.BatchItem{Index: i, Error: werr}, nil
		}
		return wire.BatchItem{Index: i, Result: res}, nil
	})
	if perr != nil {
		s.writeErr(w, asWireErr(perr))
		return
	}
	resp := wire.BatchResponse{Items: items}
	for _, it := range items {
		if it.Error != nil {
			resp.Failed++
		} else {
			resp.Succeeded++
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleLowerBound serves /v1/lowerbound: the compulsory-I/O lower
// bound (Proposition 2.4) and the schedule-existence bound
// (Proposition 2.3), computed without solving. Parametric families use
// GET query parameters (family, n, d, m, k, height, weights); explicit
// family:"cdag" graphs arrive as a request body (raw node/edge spec or
// interchange form, exactly as /v1/schedule takes them, no budget
// needed) on GET or POST.
func (s *Server) handleLowerBound(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodPost {
		s.writeErr(w, wire.Errorf(http.StatusMethodNotAllowed, "GET or POST required"))
		return
	}
	if r.Method == http.MethodPost || r.URL.Query().Get("family") == solve.FamilyCDAG {
		s.lowerBoundFromBody(w, r)
		return
	}
	q := r.URL.Query()
	intArg := func(name string) (int, *wire.Error) {
		v := q.Get(name)
		if v == "" {
			return 0, nil
		}
		n, err := strconv.Atoi(v)
		if err != nil {
			return 0, wire.Errorf(http.StatusBadRequest, "bad %s=%q: %v", name, v, err)
		}
		return n, nil
	}
	req := wire.ScheduleRequest{
		Family:  q.Get("family"),
		Weights: wire.WeightSpec{Name: q.Get("weights")},
	}
	for _, f := range []struct {
		name string
		dst  *int
	}{{"n", &req.N}, {"d", &req.D}, {"m", &req.M}, {"k", &req.K}, {"height", &req.Height}} {
		v, werr := intArg(f.name)
		if werr != nil {
			s.writeErr(w, werr)
			return
		}
		*f.dst = v
	}
	s.writeLowerBound(w, &req)
}

// lowerBoundFromBody answers bounds for a body-borne request — the
// way to submit family:"cdag" graphs, which don't fit in a query
// string. BudgetBits is not required: bounds are budget-free.
func (s *Server) lowerBoundFromBody(w http.ResponseWriter, r *http.Request) {
	var req wire.ScheduleRequest
	if err := decodeStrict(w, r, s.opts.MaxBodyBytes, &req); err != nil {
		s.writeErr(w, asWireErr(err))
		return
	}
	s.writeLowerBound(w, &req)
}

// writeLowerBound resolves the instance and writes its bounds.
func (s *Server) writeLowerBound(w http.ResponseWriter, req *wire.ScheduleRequest) {
	inst, err := req.Instance()
	if err != nil {
		s.writeErr(w, wire.Errorf(http.StatusBadRequest, "%v", err))
		return
	}
	_, g, err := inst.Build()
	if err != nil {
		s.writeErr(w, wire.Errorf(http.StatusBadRequest, "%v", err))
		return
	}
	writeJSON(w, http.StatusOK, wire.LowerBoundResult{
		Workload:         inst.Label(),
		LowerBoundBits:   int64(core.LowerBound(g)),
		MinExistenceBits: int64(core.MinExistenceBudget(g)),
		Nodes:            g.Len(),
		Edges:            g.EdgeCount(),
		TotalWeightBits:  int64(g.TotalWeight()),
		SourceWeightBits: int64(g.SourceWeight()),
		SinkWeightBits:   int64(g.SinkWeight()),
	})
}

// handleHealthz serves GET /healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"uptime_s": time.Since(s.start).Seconds(),
	})
}

// handleReadyz serves GET /readyz: the load-balancer routing signal,
// distinct from /healthz liveness. It answers 503 while the daemon is
// draining (shutdown announced, connections about to close) or
// overloaded (admission queue at capacity), 200 otherwise — so
// balancers stop routing before requests start failing.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	status, code := "ok", http.StatusOK
	switch {
	case s.draining.Load():
		status, code = "draining", http.StatusServiceUnavailable
	case s.adm.saturated():
		status, code = "overloaded", http.StatusServiceUnavailable
	}
	body := map[string]any{
		"status":      status,
		"queue_depth": s.adm.queued.Load(),
		"queue_limit": s.adm.maxQueue,
		"breaker":     s.brk.State(),
		// SLO detail rides along for operators; like peer health it never
		// flips readiness — burn rate is a paging signal, not a routing
		// one (pulling a replica for burning budget would shift its load
		// onto the others and burn faster).
		"slo": s.slo.Summary(),
	}
	if s.cluster != nil {
		// Peer reachability rides along for operators; it never flips
		// readiness — a replica that lost its peers still serves (it just
		// solves everything locally), and taking it out of rotation for
		// that would turn a partition into an outage.
		body["peers"] = s.cluster.Health()
	}
	writeJSON(w, code, body)
}

// BeginDrain flips /readyz to "draining" (503) so load balancers stop
// routing new work before the listener closes; in-flight requests are
// unaffected. The daemon calls it on SIGINT/SIGTERM ahead of
// http.Server.Shutdown.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// handleStatsz serves GET /statsz.
func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// Stats assembles the full /statsz snapshot. Exported so in-process
// fleets (the wrbpgload cluster harness, tests) can read per-replica
// counters — notably Solves, the input to fleet duplicate-solve
// accounting — without an HTTP round trip.
func (s *Server) Stats() Stats {
	st := s.m.snapshot(time.Since(s.start), s.cache.Snapshot(), s.sessions.Snapshot())
	st.QueueDepth = s.adm.queued.Load()
	st.QueueLimit = s.adm.maxQueue
	st.Breaker = s.brk.State()
	st.CacheShards = s.cache.ShardStats()
	if s.cluster != nil {
		rep := s.cluster.Health()
		st.Peers = &rep
		st.PeerRequests = s.m.reqPeer.Value()
		st.PeerShedPropagated = s.m.peerShedPropagated.Value()
		st.PeerFill = make(map[string]uint64, len(s.m.peerFillBy))
		for outcome, c := range s.m.peerFillBy {
			st.PeerFill[outcome] = c.Value()
		}
	}
	return st
}

// String describes the server configuration for startup logs.
func (s *Server) String() string {
	desc := fmt.Sprintf("cache %d×%d entries, %d solver slots (+%d queue), timeout %v (max %v), breaker %s",
		s.opts.CacheShards, s.opts.CachePerShard, s.opts.MaxInflight, s.opts.MaxQueue,
		s.opts.DefaultTimeout, s.opts.MaxTimeout, s.brk.State())
	if s.cluster != nil {
		rep := s.cluster.Health()
		desc += fmt.Sprintf(", cluster %d members (self %s, peer timeout %v)",
			rep.Total, s.cluster.Self(), s.cluster.PeerTimeout())
	}
	return desc
}
