// GraphSpec compilation: structural validation naming the offending
// node or edge, deterministic toposort, and canonical cache identity
// across isomorphic submissions.

package wire

import (
	"strings"
	"testing"

	"wrbpg/internal/solve"
)

func specNode(name string, w int64, deps ...string) GraphNode {
	return GraphNode{Name: name, WeightBits: w, Deps: deps}
}

func TestGraphSpecCompile(t *testing.T) {
	// Nodes deliberately out of topological order.
	spec := &GraphSpec{Nodes: []GraphNode{
		specNode("out", 16, "x", "y"),
		specNode("y", 8),
		specNode("x", 8),
	}}
	g, err := spec.Graph()
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 3 {
		t.Fatalf("compiled %d nodes, want 3", g.Len())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	sinks := g.Sinks()
	if len(sinks) != 1 || g.Name(sinks[0]) != "out" || len(g.Parents(sinks[0])) != 2 {
		t.Fatalf("sink structure wrong: sinks=%v", sinks)
	}
}

func TestGraphSpecErrorsNameOffenders(t *testing.T) {
	cases := []struct {
		name string
		spec GraphSpec
		want string // substring the error must carry
	}{
		{"empty", GraphSpec{}, "no nodes"},
		{"unnamed", GraphSpec{Nodes: []GraphNode{{WeightBits: 8}}}, "no name"},
		{"duplicate name", GraphSpec{Nodes: []GraphNode{
			specNode("a", 8), specNode("a", 8)}}, `"a"`},
		{"non-positive weight", GraphSpec{Nodes: []GraphNode{
			specNode("heavy", 0)}}, `"heavy"`},
		{"dangling edge", GraphSpec{Nodes: []GraphNode{
			specNode("a", 8, "ghost")}}, `"ghost" -> "a"`},
		{"self cycle", GraphSpec{Nodes: []GraphNode{
			specNode("a", 8, "a")}}, "self-cycle"},
		{"duplicate edge", GraphSpec{Nodes: []GraphNode{
			specNode("p", 8), specNode("a", 8, "p", "p")}}, "twice"},
		{"two cycle", GraphSpec{Nodes: []GraphNode{
			specNode("a", 8, "b"), specNode("b", 8, "a")}}, "cycle"},
	}
	for _, tc := range cases {
		_, err := tc.spec.Graph()
		if err == nil {
			t.Errorf("%s: compiled without error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not name the offender %q", tc.name, err, tc.want)
		}
	}
}

// TestGraphSpecCycleNamesMembers: the cycle error prints the loop's
// node names, not just "cycle detected".
func TestGraphSpecCycleNamesMembers(t *testing.T) {
	spec := &GraphSpec{Nodes: []GraphNode{
		specNode("src", 8),
		specNode("a", 8, "src", "c"),
		specNode("b", 8, "a"),
		specNode("c", 8, "b"),
		specNode("sink", 8, "c"),
	}}
	_, err := spec.Graph()
	if err == nil {
		t.Fatal("cyclic spec compiled")
	}
	for _, name := range []string{`"a"`, `"b"`, `"c"`} {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("cycle error %q misses member %s", err, name)
		}
	}
	if strings.Contains(err.Error(), `"src"`) || strings.Contains(err.Error(), `"sink"`) {
		t.Fatalf("cycle error %q names nodes outside the loop", err)
	}
}

// TestCDAGRequestIsomorphicKeys: the same dataflow submitted with
// different node names and orderings — and across the two wire forms —
// lands on one canonical cache key.
func TestCDAGRequestIsomorphicKeys(t *testing.T) {
	a := &ScheduleRequest{Family: solve.FamilyCDAG, BudgetBits: 64,
		CDAG: &GraphSpec{Nodes: []GraphNode{
			specNode("x", 8), specNode("y", 4), specNode("r", 16, "x", "y"),
		}}}
	b := &ScheduleRequest{Family: solve.FamilyCDAG, BudgetBits: 64,
		CDAG: &GraphSpec{Nodes: []GraphNode{
			specNode("result", 16, "right", "left"),
			specNode("right", 8), specNode("left", 4),
		}}}
	ia, err := a.Instance()
	if err != nil {
		t.Fatal(err)
	}
	ib, err := b.Instance()
	if err != nil {
		t.Fatal(err)
	}
	if ia.Key(64) != ib.Key(64) {
		t.Fatalf("isomorphic cdag specs keyed differently:\n  %s\n  %s", ia.Key(64), ib.Key(64))
	}
	if len(ia.Perm) != 3 || len(ib.Perm) != 3 {
		t.Fatalf("permutations not recorded: %v %v", ia.Perm, ib.Perm)
	}
}

func TestScheduleRequestRejectsBothGraphForms(t *testing.T) {
	g := &GraphSpec{Nodes: []GraphNode{specNode("a", 8)}}
	ga, err := g.Graph()
	if err != nil {
		t.Fatal(err)
	}
	r := &ScheduleRequest{Family: solve.FamilyCDAG, BudgetBits: 64, Graph: ga, CDAG: g}
	if _, err := r.Instance(); err == nil {
		t.Fatal("request with both graph and cdag accepted")
	}
}
