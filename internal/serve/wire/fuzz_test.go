// Fuzz targets for the wire request decoders: every malformed body
// must come back as a structured error (the serve layer's 400), never
// a panic. The targets mirror the handler pipeline exactly — strict
// JSON decode, request→Instance conversion, Validate, key derivation —
// but stop short of Build, so the fuzzer explores the parsing and
// validation surface without paying graph-construction time or memory.
//
// Run continuously with:
//
//	go test -fuzz=FuzzScheduleRequest -fuzztime=30s ./internal/serve/wire
//	go test -fuzz=FuzzCDAGRequest     -fuzztime=30s ./internal/serve/wire
//	go test -fuzz=FuzzPatchRequest    -fuzztime=30s ./internal/serve/wire
//	go test -fuzz=FuzzPeerRequest     -fuzztime=30s ./internal/serve/wire

package wire

import (
	"bytes"
	"encoding/json"
	"testing"

	"wrbpg/internal/solve"
)

// decodeLikeServer mimics serve.decodeStrict: DisallowUnknownFields
// plus a trailing-data check. Returns false when the body is rejected
// at the JSON layer (the handler's immediate 400).
func decodeLikeServer(data []byte, v any) bool {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return false
	}
	return !dec.More()
}

func FuzzScheduleRequest(f *testing.F) {
	// Seeds from docs/SERVICE.md examples plus boundary shapes.
	f.Add([]byte(`{"family":"dwt","n":32,"d":4,"budget_bits":2048}`))
	f.Add([]byte(`{"family":"dwt","n":32,"d":4,"weights":{"name":"da"},"budget_bits":2048,"timeout_ms":500,"include_moves":true}`))
	f.Add([]byte(`{"family":"ktree","k":2,"height":5,"budget_bits":4096}`))
	f.Add([]byte(`{"family":"mvm","m":96,"n":8,"budget_bits":1024}`))
	f.Add([]byte(`{"family":"cdag","graph":{"nodes":[{"id":0,"weight_bits":8}]},"budget_bits":64}`))
	f.Add([]byte(`{"family":"dwt","n":32,"d":4,"weights":{"word_bits":8,"input_words":1,"output_words":1},"budget_bits":256}`))
	f.Add([]byte(`{"family":"dwt","n":-1,"d":0,"budget_bits":-5}`))
	f.Add([]byte(`{"family":""}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"family":"dwt","n":9007199254740993,"d":4,"budget_bits":9223372036854775807}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var req ScheduleRequest
		if !decodeLikeServer(data, &req) {
			return // handler answers 400 before the request exists
		}
		inst, err := req.Instance()
		if err != nil {
			return // structured 400
		}
		if err := inst.Validate(); err != nil {
			return // structured 400
		}
		// A validated instance must be keyable without panicking; the
		// keys feed the schedule cache and session pool.
		if inst.Key(1) == "" {
			t.Fatal("validated instance produced an empty cache key")
		}
		if inst.ShapeKey() == "" {
			t.Fatal("validated instance produced an empty shape key")
		}
	})
}

// FuzzCDAGRequest exercises the raw node/edge CDAG decoder end to
// end: strict JSON decode, GraphSpec compilation (name resolution,
// toposort, cycle detection), instance validation and canonical
// relabeling. Malformed specs — cycles, dangling deps, duplicate
// names, non-positive weights — must come back as structured errors,
// never panics; accepted specs must canonicalize deterministically
// with a valid permutation.
func FuzzCDAGRequest(f *testing.F) {
	f.Add([]byte(`{"family":"cdag","budget_bits":64,"cdag":{"nodes":[{"name":"x","weight_bits":8},{"name":"y","weight_bits":8},{"name":"out","weight_bits":16,"deps":["x","y"]}]}}`))
	f.Add([]byte(`{"family":"cdag","budget_bits":64,"cdag":{"nodes":[{"name":"out","weight_bits":16,"deps":["x"]},{"name":"x","weight_bits":8}]}}`))
	f.Add([]byte(`{"family":"cdag","budget_bits":64,"cdag":{"nodes":[{"name":"a","weight_bits":8,"deps":["b"]},{"name":"b","weight_bits":8,"deps":["a"]}]}}`))
	f.Add([]byte(`{"family":"cdag","budget_bits":64,"cdag":{"nodes":[{"name":"a","weight_bits":8,"deps":["ghost"]}]}}`))
	f.Add([]byte(`{"family":"cdag","budget_bits":64,"cdag":{"nodes":[{"name":"a","weight_bits":-8}]}}`))
	f.Add([]byte(`{"family":"cdag","budget_bits":64,"cdag":{"nodes":[{"name":"a","weight_bits":8},{"name":"a","weight_bits":8}]}}`))
	f.Add([]byte(`{"family":"cdag","budget_bits":64,"cdag":{"nodes":[]}}`))
	f.Add([]byte(`{"family":"cdag","budget_bits":64,"cdag":{"nodes":[{"name":"a","weight_bits":8,"deps":["a"]}]}}`))
	f.Add([]byte(`{"family":"cdag","budget_bits":64,"graph":{"nodes":[{"w":8}]},"cdag":{"nodes":[{"name":"a","weight_bits":8}]}}`))
	f.Add([]byte(`{"family":"cdag"}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var req ScheduleRequest
		if !decodeLikeServer(data, &req) {
			return // handler answers 400 before the request exists
		}
		inst, err := req.Instance()
		if err != nil {
			return // structured 400
		}
		// Canonicalization must be a real relabeling: when a permutation
		// was recorded it covers every node exactly once.
		if inst.Family == solve.FamilyCDAG {
			if len(inst.Perm) != inst.G.Len() {
				t.Fatalf("perm length %d for %d-node graph", len(inst.Perm), inst.G.Len())
			}
			seen := make([]bool, len(inst.Perm))
			for _, p := range inst.Perm {
				if p < 0 || int(p) >= len(seen) || seen[p] {
					t.Fatalf("perm is not a permutation: %v", inst.Perm)
				}
				seen[p] = true
			}
		}
		// Re-converting the same request must land on the same key —
		// the cache identity of a cdag body is deterministic.
		again, err := req.Instance()
		if err != nil {
			t.Fatalf("second Instance() of an accepted request failed: %v", err)
		}
		if inst.Key(64) != again.Key(64) {
			t.Fatal("cdag request key not deterministic across conversions")
		}
	})
}

// FuzzPeerRequest exercises the replica-to-replica fill decoder: the
// peer endpoint runs the same pipeline as the public one but with the
// forwarder's envelope (inner request + expected key + origin), so the
// envelope layer must reject garbage as a structured 400 and never let
// a hostile peer body panic a replica.
func FuzzPeerRequest(f *testing.F) {
	f.Add([]byte(`{"req":{"family":"dwt","n":32,"d":4,"budget_bits":2048,"include_moves":true,"timeout_ms":125},"key":"sha256:ab","origin":"http://replica-0:8080"}`))
	f.Add([]byte(`{"req":{"family":"ktree","k":2,"height":5,"budget_bits":4096}}`))
	f.Add([]byte(`{"req":{},"key":"","origin":""}`))
	f.Add([]byte(`{"key":"sha256:no-request"}`))
	f.Add([]byte(`{"req":{"family":"dwt","n":-1,"d":0,"budget_bits":-5},"key":"zz"}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`null`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var preq PeerScheduleRequest
		if !decodeLikeServer(data, &preq) {
			return // handler answers 400 before the envelope exists
		}
		inst, err := preq.Req.Instance()
		if err != nil {
			return // structured 400
		}
		if err := inst.Validate(); err != nil {
			return // structured 400
		}
		// The owner recomputes the key and compares against the
		// forwarder's; both sides must be derivable without panicking.
		key := inst.Key(preq.Req.BudgetBits)
		if key == "" {
			t.Fatal("validated peer request produced an empty cache key")
		}
		// The mismatch check is pure string comparison; any forwarder-sent
		// key must be safely comparable (no canonicalization surprises).
		_ = preq.Key == key
	})
}

func FuzzPatchRequest(f *testing.F) {
	f.Add([]byte(`{"family":"dwt","n":64,"d":6,"deltas":[{"node":3,"weight_bits":24}],"budgets_bits":[112,176]}`))
	f.Add([]byte(`{"family":"ktree","k":3,"height":3,"deltas":[{"node":0,"weight_bits":16}],"budgets_bits":[4096,2048,1024,512]}`))
	f.Add([]byte(`{"base_key":"sha256:abcdef","deltas":[{"node":1,"weight_bits":8}],"budgets_bits":[64]}`))
	f.Add([]byte(`{"family":"dwt","n":16,"d":2,"deltas":[{"node":5,"weight_bits":8},{"node":5,"weight_bits":12}],"budgets_bits":[128]}`))
	f.Add([]byte(`{"family":"dwt","n":16,"d":2,"deltas":[],"budgets_bits":[]}`))
	f.Add([]byte(`{"family":"dwt","n":16,"d":2,"deltas":[{"node":-1,"weight_bits":-9223372036854775808}],"budgets_bits":[0]}`))
	f.Add([]byte(`{}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var req PatchRequest
		if !decodeLikeServer(data, &req) {
			return
		}
		ds, err := CanonicalDeltas(req.Deltas)
		if err != nil {
			return // structured 400
		}
		// Canonical form is sorted by node with duplicates merged.
		for i := 1; i < len(ds); i++ {
			if ds[i-1].Node >= ds[i].Node {
				t.Fatalf("CanonicalDeltas not strictly sorted: %v", ds)
			}
		}
		if req.BaseKey != "" {
			return // resolved against the session pool, nothing to build
		}
		inst, err := req.BaseInstance()
		if err != nil {
			return // structured 400
		}
		inst.Deltas = ds
		if err := inst.Validate(); err != nil {
			return // structured 400
		}
		if inst.ShapeKey() == "" || inst.BaseShapeKey() == "" {
			t.Fatal("validated patch instance produced an empty key")
		}
		// The base key must not depend on the deltas.
		base := inst.BaseShapeKey()
		inst.Deltas = nil
		if inst.BaseShapeKey() != base {
			t.Fatal("BaseShapeKey depends on deltas")
		}
	})
}
