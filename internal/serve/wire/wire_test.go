package wire

import (
	"encoding/json"
	"testing"

	"wrbpg/internal/wcfg"
)

func TestWeightSpecConfig(t *testing.T) {
	if c, err := (WeightSpec{}).Config(); err != nil || c.Name != "Equal" {
		t.Fatalf("default spec: %v %v", c, err)
	}
	if c, err := (WeightSpec{Name: "da"}).Config(); err != nil || c.NodeWords != 2 {
		t.Fatalf("da spec: %v %v", c, err)
	}
	if c, err := (WeightSpec{WordBits: 8, InputWords: 1, NodeWords: 3}).Config(); err != nil || c.Node() != 24 {
		t.Fatalf("custom spec: %v %v", c, err)
	}
	bad := []WeightSpec{
		{Name: "halting"},
		{WordBits: -8, InputWords: 1, NodeWords: 1},
		{WordBits: 8, InputWords: 0, NodeWords: 1}, // partial custom spec
		{WordBits: 8, InputWords: 1, NodeWords: -1},
	}
	for i, ws := range bad {
		if _, err := ws.Config(); err == nil {
			t.Errorf("case %d: accepted invalid spec %+v", i, ws)
		}
	}
}

// TestScheduleRequestInstanceRoundTrip: the request type survives a
// JSON round trip and canonicalizes to a keyed instance.
func TestScheduleRequestInstanceRoundTrip(t *testing.T) {
	req := ScheduleRequest{Family: "mvm", M: 4, N: 6, BudgetBits: 512,
		Weights: WeightSpec{Name: "da"}}
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	var back ScheduleRequest
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	in1, err := req.Instance()
	if err != nil {
		t.Fatal(err)
	}
	in2, err := back.Instance()
	if err != nil {
		t.Fatal(err)
	}
	if in1.Key(req.BudgetBits) != in2.Key(req.BudgetBits) {
		t.Fatal("round-tripped request changed its cache key")
	}
	if in1.Cfg != wcfg.DoubleAccumulator(wcfg.DefaultWordBits) {
		t.Fatalf("weights not resolved: %+v", in1.Cfg)
	}
}

func TestCloneIsolation(t *testing.T) {
	r := &ScheduleResult{Workload: "x", MoveKinds: map[string]int{"M1": 1}}
	c := r.Clone()
	c.Cache = "hit"
	c.MoveKinds["M1"] = 99
	if r.Cache != "" || r.MoveKinds["M1"] != 1 {
		t.Fatal("Clone shares state with the original")
	}
}
