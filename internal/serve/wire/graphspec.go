// Raw CDAG submissions: the named node/edge wire form of a
// family:"cdag" request. Unlike cdag.Graph's interchange JSON (integer
// parent IDs in topological pre-order), a GraphSpec names nodes and
// edges symbolically and accepts them in any order — the compiler
// toposorts, so clients can emit their dataflow graphs however their
// own IR iterates. Malformed specs fail with errors naming the
// offending node or edge (duplicate name, non-positive weight,
// dangling dependency, cycle membership), which servers surface as
// structured 400s.

package wire

import (
	"fmt"
	"strings"

	"wrbpg/internal/cdag"
)

// GraphNode is one node of a raw CDAG submission.
type GraphNode struct {
	// Name is the node's unique identifier within the spec.
	Name string `json:"name"`
	// WeightBits is the node's positive weight in bits.
	WeightBits int64 `json:"weight_bits"`
	// Deps names the nodes this node consumes (its parents). Order is
	// irrelevant; duplicate entries are an error.
	Deps []string `json:"deps,omitempty"`
}

// GraphSpec is the raw node/edge form of an explicit CDAG. Nodes may
// appear in any order; the compiler establishes a topological order or
// reports the cycle that prevents one.
type GraphSpec struct {
	Nodes []GraphNode `json:"nodes"`
}

// Graph compiles the spec into a cdag.Graph, with node insertion in a
// deterministic topological order (Kahn's algorithm seeded and drained
// in input order, so the same spec always compiles to the same graph).
// Every validation failure names the offending node or edge.
func (s *GraphSpec) Graph() (*cdag.Graph, error) {
	n := len(s.Nodes)
	if n == 0 {
		return nil, fmt.Errorf("cdag spec has no nodes")
	}
	idx := make(map[string]int, n)
	for i, nd := range s.Nodes {
		if nd.Name == "" {
			return nil, fmt.Errorf("cdag spec node %d has no name", i)
		}
		if prev, dup := idx[nd.Name]; dup {
			return nil, fmt.Errorf("cdag spec duplicates node name %q (indices %d and %d)", nd.Name, prev, i)
		}
		idx[nd.Name] = i
	}
	for _, nd := range s.Nodes {
		if nd.WeightBits < 1 {
			return nil, fmt.Errorf("cdag spec node %q has non-positive weight %d bits", nd.Name, nd.WeightBits)
		}
		seen := make(map[string]bool, len(nd.Deps))
		for _, d := range nd.Deps {
			if _, ok := idx[d]; !ok {
				return nil, fmt.Errorf("cdag spec edge %q -> %q dangles: no node named %q", d, nd.Name, d)
			}
			if d == nd.Name {
				return nil, fmt.Errorf("cdag spec edge %q -> %q is a self-cycle", d, nd.Name)
			}
			if seen[d] {
				return nil, fmt.Errorf("cdag spec edge %q -> %q is listed twice", d, nd.Name)
			}
			seen[d] = true
		}
	}

	// Kahn's toposort over the dependency edges, input order as the
	// tiebreak so compilation is deterministic.
	indeg := make([]int, n)
	children := make([][]int, n)
	for i, nd := range s.Nodes {
		indeg[i] = len(nd.Deps)
		for _, d := range nd.Deps {
			p := idx[d]
			children[p] = append(children[p], i)
		}
	}
	order := make([]int, 0, n)
	queue := make([]int, 0, n)
	for i := range s.Nodes {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, c := range children[v] {
			if indeg[c]--; indeg[c] == 0 {
				queue = append(queue, c)
			}
		}
	}
	if len(order) < n {
		return nil, fmt.Errorf("cdag spec contains a cycle: %s", s.describeCycle(indeg, idx))
	}

	g := &cdag.Graph{}
	ids := make([]cdag.NodeID, n)
	var parents []cdag.NodeID
	for _, i := range order {
		nd := s.Nodes[i]
		parents = parents[:0]
		for _, d := range nd.Deps {
			parents = append(parents, ids[idx[d]])
		}
		id, err := g.TryAddNode(nd.WeightBits, nd.Name, parents...)
		if err != nil {
			return nil, fmt.Errorf("cdag spec node %q: %v", nd.Name, err)
		}
		ids[i] = id
	}
	return g, nil
}

// describeCycle names one dependency cycle among the nodes Kahn's
// algorithm could not drain (indeg > 0): walk unresolved deps from any
// stuck node until one repeats, then print the loop.
func (s *GraphSpec) describeCycle(indeg []int, idx map[string]int) string {
	start := -1
	for i, d := range indeg {
		if d > 0 {
			start = i
			break
		}
	}
	pos := make(map[int]int)
	var path []int
	for v := start; ; {
		if at, seen := pos[v]; seen {
			loop := path[at:]
			names := make([]string, 0, len(loop)+1)
			for _, u := range loop {
				names = append(names, fmt.Sprintf("%q", s.Nodes[u].Name))
			}
			names = append(names, fmt.Sprintf("%q", s.Nodes[loop[0]].Name))
			return strings.Join(names, " -> ")
		}
		pos[v] = len(path)
		path = append(path, v)
		for _, d := range s.Nodes[v].Deps {
			if p := idx[d]; indeg[p] > 0 {
				v = p
				break
			}
		}
	}
}
