// Package wire defines the machine-readable request/response types
// shared by the wrbpgd HTTP API and the wrbpg CLI's -json output, so
// both surfaces emit the same result struct and downstream tooling
// parses one format.
package wire

import (
	"fmt"
	"math"
	"time"

	"wrbpg/internal/cdag"
	"wrbpg/internal/core"
	"wrbpg/internal/obs"
	"wrbpg/internal/solve"
	"wrbpg/internal/wcfg"
)

// WeightSpec selects a weight configuration: either a named preset
// ("equal", "da") or explicit word/class sizes. Explicit fields, when
// any is set, override the preset entirely.
type WeightSpec struct {
	// Name is "equal" (default) or "da" / "double-accumulator".
	Name string `json:"name,omitempty"`
	// WordBits, InputWords and NodeWords spell out a custom
	// configuration; all three must be positive when used.
	WordBits   int `json:"word_bits,omitempty"`
	InputWords int `json:"input_words,omitempty"`
	NodeWords  int `json:"node_words,omitempty"`
}

// Config resolves the spec to a wcfg.Config, rejecting non-positive
// custom weights (the negative-weight validation gap of untrusted
// requests).
func (ws WeightSpec) Config() (wcfg.Config, error) {
	if ws.WordBits != 0 || ws.InputWords != 0 || ws.NodeWords != 0 {
		if ws.WordBits < 1 || ws.InputWords < 1 || ws.NodeWords < 1 {
			return wcfg.Config{}, fmt.Errorf(
				"wire: custom weights must all be positive, got word_bits=%d input_words=%d node_words=%d",
				ws.WordBits, ws.InputWords, ws.NodeWords)
		}
		return wcfg.Config{Name: "Custom", WordBits: ws.WordBits,
			InputWords: ws.InputWords, NodeWords: ws.NodeWords}, nil
	}
	switch ws.Name {
	case "", "equal":
		return wcfg.Equal(wcfg.DefaultWordBits), nil
	case "da", "double", "double-accumulator":
		return wcfg.DoubleAccumulator(wcfg.DefaultWordBits), nil
	default:
		return wcfg.Config{}, fmt.Errorf("wire: unknown weight config %q (want equal or da)", ws.Name)
	}
}

// ScheduleRequest asks for one solve. Families: "dwt" (N, D), "ktree"
// (K, Height), "mvm" (M, N), or "cdag" with an explicit Graph in the
// cdag JSON spec format.
type ScheduleRequest struct {
	Family string `json:"family"`
	N      int    `json:"n,omitempty"`
	D      int    `json:"d,omitempty"`
	M      int    `json:"m,omitempty"`
	K      int    `json:"k,omitempty"`
	Height int    `json:"height,omitempty"`
	// Weights selects the node-weight configuration for the parametric
	// families; ignored for cdag.
	Weights WeightSpec `json:"weights,omitempty"`
	// BudgetBits is the fast-memory budget B; it must be positive
	// (servers have no "default to minimum memory" convention — the
	// budget is part of the cache identity).
	BudgetBits int64 `json:"budget_bits"`
	// Graph is the explicit CDAG of a family:"cdag" request in the
	// cdag interchange form (integer parents, topological order).
	Graph *cdag.Graph `json:"graph,omitempty"`
	// CDAG is the raw node/edge form of a family:"cdag" request: named
	// nodes with symbolic deps in any order (see GraphSpec). Exactly one
	// of Graph and CDAG may be set.
	CDAG *GraphSpec `json:"cdag,omitempty"`
	// TimeoutMS optionally overrides the server's default solve
	// deadline, clamped to its maximum.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// IncludeMoves asks for the full move list in the response (the
	// summary metrics are always present).
	IncludeMoves bool `json:"include_moves,omitempty"`
	// Deltas, when present, are per-node weight overrides applied on
	// top of the configured weights (dwt and ktree only). They become
	// part of the instance's cache identity, so a patched variant never
	// collides with its base in the schedule cache. The same schema
	// feeds POST /v1/schedule/patch and the CLI's -patch mode.
	Deltas []PatchDelta `json:"deltas,omitempty"`
}

// Instance converts the request to its canonical solve.Instance. For
// family:"cdag" the graph — whichever wire form carried it — is
// relabeled into the structural canonical form, so isomorphic
// submissions (same dataflow, different node order or names) share one
// cache key; Instance.Perm records the relabeling for callers that
// must express move lists back in the requester's numbering.
func (r *ScheduleRequest) Instance() (solve.Instance, error) {
	var cfg wcfg.Config
	if r.Family != solve.FamilyCDAG {
		var err error
		if cfg, err = r.Weights.Config(); err != nil {
			return solve.Instance{}, err
		}
	}
	g := r.Graph
	if r.CDAG != nil {
		if g != nil {
			return solve.Instance{}, fmt.Errorf("wire: request sets both graph and cdag; send exactly one")
		}
		var err error
		if g, err = r.CDAG.Graph(); err != nil {
			return solve.Instance{}, fmt.Errorf("wire: %v", err)
		}
	}
	in := solve.Instance{
		Family: r.Family,
		N:      r.N, D: r.D, M: r.M,
		K: r.K, Height: r.Height,
		Cfg: cfg,
		G:   g,
	}
	ds, err := CanonicalDeltas(r.Deltas)
	if err != nil {
		return solve.Instance{}, err
	}
	in.Deltas = ds
	if err := in.Validate(); err != nil {
		return solve.Instance{}, err
	}
	in.Canonicalize()
	return in, nil
}

// PatchDelta is one node-weight override in the wire schema, shared by
// the deltas field of /v1/schedule, POST /v1/schedule/patch and the
// CLI's -patch mode: set the named node's weight to weight_bits.
type PatchDelta struct {
	Node       int64 `json:"node"`
	WeightBits int64 `json:"weight_bits"`
}

// CanonicalDeltas converts wire deltas to the canonical solver form:
// sorted by node, duplicate nodes merged last-wins (the order clients
// sent them in is their application order). Weight positivity and node
// range against the actual graph are the instance's job
// (solve.Instance.Validate); only the node-ID representation is
// checked here.
func CanonicalDeltas(ds []PatchDelta) ([]cdag.WeightDelta, error) {
	if len(ds) == 0 {
		return nil, nil
	}
	out := make([]cdag.WeightDelta, len(ds))
	for i, d := range ds {
		if d.Node < 0 || d.Node > math.MaxInt32 {
			return nil, fmt.Errorf("wire: deltas[%d].node %d out of range", i, d.Node)
		}
		out[i] = cdag.WeightDelta{Node: cdag.NodeID(d.Node), Weight: d.WeightBits}
	}
	return cdag.CanonicalDeltas(out), nil
}

// ScheduleResult is the shared machine-readable result of one solve,
// emitted identically by `wrbpg schedule -json` and by wrbpgd.
type ScheduleResult struct {
	// Workload is the human-readable instance label.
	Workload string `json:"workload"`
	// Source is "optimal", "anytime" (the general-DAG branch-and-bound
	// tier) or "fallback".
	Source string `json:"source"`
	// FallbackReason is the human-readable degradation cause when
	// Source is "fallback"; FallbackCause is its machine-readable
	// classification ("deadline", "budget", "panic", "canceled" or
	// "other") for clients and dashboards that must not string-match.
	FallbackReason string `json:"fallback_reason,omitempty"`
	FallbackCause  string `json:"fallback_cause,omitempty"`
	// BudgetBits, CostBits, PeakBits and LowerBoundBits are the solve
	// metrics in bits (weighted I/O cost, peak red residency, and the
	// Proposition 2.4 lower bound).
	BudgetBits     int64 `json:"budget_bits"`
	CostBits       int64 `json:"cost_bits"`
	PeakBits       int64 `json:"peak_bits"`
	LowerBoundBits int64 `json:"lower_bound_bits"`
	// MoveCount is the schedule length; MoveKinds counts M1–M4.
	MoveCount int            `json:"move_count"`
	MoveKinds map[string]int `json:"move_kinds"`
	// Anytime carries the branch-and-bound search report when Source is
	// "anytime" (the general-DAG tier).
	Anytime *AnytimeResult `json:"anytime,omitempty"`
	// Schedule is the full move list, present only when requested.
	Schedule core.Schedule `json:"schedule,omitempty"`
	// ElapsedUS is the wall-clock solve time in microseconds. On a
	// cache hit the server reports the lookup time, not the original
	// solve time.
	ElapsedUS int64 `json:"elapsed_us"`
	// CacheKey is the content-addressed identity of the instance;
	// Cache is "hit", "miss" or "shared" when served from wrbpgd and
	// empty from the CLI.
	CacheKey string `json:"cache_key,omitempty"`
	Cache    string `json:"cache,omitempty"`
	// Cost is the per-request cost accounting block, stamped by wrbpgd
	// (absent from the CLI's -json output).
	Cost *CostMeta `json:"cost,omitempty"`
}

// CostMeta is the per-request cost accounting block: where a response
// came from (SourceTier) and what serving it spent — queue wait, solve
// wall time, and the solver-progress counters teed from
// guard.TakeCounts. Every schedule/sweep/patch response carries one,
// and the serve layer's structured request log line repeats it, so
// expensive requests are attributable from either surface.
type CostMeta struct {
	// SourceTier names the degradation-ladder tier that produced the
	// response: "cache" / "shared" (local cache), "peer" (ring-owner
	// fill), "solve" (admitted local solve), "degraded" (baseline
	// fallback under shed pressure), "breaker" (peer-breaker fallback)
	// or "session" (sweep/patch warm-session answer).
	SourceTier string `json:"source_tier"`
	// QueueWaitUS is the time spent in the admission queue.
	QueueWaitUS int64 `json:"queue_wait_us,omitempty"`
	// SolveWallUS is the wall-clock time of the solve (or sweep/patch)
	// itself, excluding queueing and transport.
	SolveWallUS int64 `json:"solve_wall_us,omitempty"`
	// StatesExpanded counts tracked search states (exact/anytime tiers).
	StatesExpanded int64 `json:"states_expanded,omitempty"`
	// MemoHits / MemoMisses count warm memo probes versus fresh cells
	// created across every solver the request drove.
	MemoHits   int64 `json:"memo_hits,omitempty"`
	MemoMisses int64 `json:"memo_misses,omitempty"`
	// CellsInvalidated / CellsReused report incremental-engine work
	// (patch requests).
	CellsInvalidated int64 `json:"cells_invalidated,omitempty"`
	CellsReused      int64 `json:"cells_reused,omitempty"`
	// PeerHops counts replica-to-replica forwards taken to answer.
	PeerHops int `json:"peer_hops,omitempty"`
}

// CostMeta.SourceTier vocabulary, ordered roughly by cost: cache
// dispositions, a ring-owner fill, a warm-session answer, an admitted
// local solve, and the two shed-pressure fallbacks.
const (
	TierCache    = "cache"
	TierShared   = "shared"
	TierPeer     = "peer"
	TierSession  = "session"
	TierSolve    = "solve"
	TierDegraded = "degraded"
	TierBreaker  = "breaker"
)

// AnytimeResult reports one branch-and-bound search of the general-DAG
// anytime tier: whether the frontier drained (Complete certifies the
// cost optimal within the no-recompute subspace — such results are
// cacheable like optimal ones), the baseline seed the search improved
// on, and the search-effort counters.
type AnytimeResult struct {
	Complete     bool  `json:"complete"`
	SeedCostBits int64 `json:"seed_cost_bits"`
	Expanded     int64 `json:"expanded"`
	Pruned       int64 `json:"pruned"`
	Deduped      int64 `json:"deduped"`
	Improvements int64 `json:"improvements"`
	Workers      int   `json:"workers"`
}

// NewScheduleResult builds the shared result struct from a solve
// outcome. lb is core.LowerBound of the instance graph.
func NewScheduleResult(label string, out solve.Outcome, lb cdag.Weight, includeMoves bool) *ScheduleResult {
	r := &ScheduleResult{
		Workload:       label,
		Source:         out.Source.String(),
		BudgetBits:     int64(out.Budget),
		CostBits:       int64(out.Stats.Cost),
		PeakBits:       int64(out.Stats.PeakRedWeight),
		LowerBoundBits: int64(lb),
		MoveCount:      len(out.Schedule),
		MoveKinds: map[string]int{
			"M1": out.Stats.Moves[core.M1],
			"M2": out.Stats.Moves[core.M2],
			"M3": out.Stats.Moves[core.M3],
			"M4": out.Stats.Moves[core.M4],
		},
		ElapsedUS: out.Elapsed.Microseconds(),
	}
	if out.Source == solve.SourceFallback && out.Err != nil {
		r.FallbackReason = out.Err.Error()
		r.FallbackCause = solve.FallbackReason(out.Err)
	}
	if out.Anytime != nil {
		r.Anytime = &AnytimeResult{
			Complete:     out.Anytime.Complete,
			SeedCostBits: int64(out.Anytime.SeedCost),
			Expanded:     out.Anytime.Expanded,
			Pruned:       out.Anytime.Pruned,
			Deduped:      out.Anytime.Deduped,
			Improvements: out.Anytime.Improvements,
			Workers:      out.Anytime.Workers,
		}
	}
	if includeMoves {
		r.Schedule = out.Schedule
	}
	return r
}

// Clone returns a shallow-plus-maps copy, so per-request fields
// (Cache, ElapsedUS, Cost) can be stamped without mutating a cached
// result.
func (r *ScheduleResult) Clone() *ScheduleResult {
	cp := *r
	cp.MoveKinds = make(map[string]int, len(r.MoveKinds))
	for k, v := range r.MoveKinds {
		cp.MoveKinds[k] = v
	}
	if r.Cost != nil {
		c := *r.Cost
		cp.Cost = &c
	}
	return &cp
}

// SweepRequest asks for the optimal costs of one instance at many
// budgets, answered from a single warm solver session (POST
// /v1/schedule/sweep). The instance fields mirror ScheduleRequest;
// the response carries per-budget costs only — fetch move lists for
// interesting budgets via /v1/schedule, which shares no state with
// the sweep path.
type SweepRequest struct {
	Family string `json:"family"`
	N      int    `json:"n,omitempty"`
	D      int    `json:"d,omitempty"`
	M      int    `json:"m,omitempty"`
	K      int    `json:"k,omitempty"`
	Height int    `json:"height,omitempty"`
	// Weights selects the node-weight configuration for the parametric
	// families; ignored for cdag.
	Weights WeightSpec `json:"weights,omitempty"`
	// Graph is the explicit CDAG of a family:"cdag" request.
	Graph *cdag.Graph `json:"graph,omitempty"`
	// CDAG is the raw node/edge form of a family:"cdag" request.
	CDAG *GraphSpec `json:"cdag,omitempty"`
	// BudgetsBits lists the fast-memory budgets to answer, all
	// positive; answers come back in the same order.
	BudgetsBits []int64 `json:"budgets_bits"`
	// TimeoutMS optionally overrides the server's default deadline for
	// the whole sweep, clamped to its maximum.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// Instance converts the request to its canonical solve.Instance.
func (r *SweepRequest) Instance() (solve.Instance, error) {
	sr := ScheduleRequest{
		Family: r.Family,
		N:      r.N, D: r.D, M: r.M,
		K: r.K, Height: r.Height,
		Weights: r.Weights,
		Graph:   r.Graph,
		CDAG:    r.CDAG,
	}
	return sr.Instance()
}

// SweepItem is one budget's answer. Feasible=false with no Error is a
// legitimate answer: no schedule exists under that budget. Error is
// set when that budget's query was aborted (deadline, resource
// budget, solver fault); sibling budgets are unaffected.
type SweepItem struct {
	BudgetBits int64  `json:"budget_bits"`
	CostBits   int64  `json:"cost_bits,omitempty"`
	Feasible   bool   `json:"feasible"`
	Error      *Error `json:"error,omitempty"`
}

// SweepResponse answers one sweep: per-budget items in request order
// plus the instance bounds and session-pool disposition.
type SweepResponse struct {
	Workload         string      `json:"workload"`
	LowerBoundBits   int64       `json:"lower_bound_bits"`
	MinExistenceBits int64       `json:"min_existence_bits"`
	Items            []SweepItem `json:"items"`
	Succeeded        int         `json:"succeeded"`
	Failed           int         `json:"failed"`
	// Session is "hit" when the sweep was answered from an existing
	// warm session, "miss" when a session was built, "shared" when a
	// concurrent request built it.
	Session   string `json:"session"`
	ElapsedUS int64  `json:"elapsed_us"`
	// Cost is the per-request cost accounting block.
	Cost *CostMeta `json:"cost,omitempty"`
}

// PatchRequest asks for incremental re-solves: apply weight deltas to
// a base instance and answer the listed budgets from the warm session
// pool (POST /v1/schedule/patch). The base is named either by
// base_key — the base_key of a previous patch response (or the
// ShapeKey of a delta-free instance), resolved against the resident
// session pool — or inline by the family fields, which always works
// and warms the pool for subsequent base_key calls. Only the
// incremental families (dwt, ktree) accept patches.
type PatchRequest struct {
	// BaseKey is the content-addressed identity of the base instance
	// (solve.Instance.BaseShapeKey). Mutually exclusive with the inline
	// family fields; 404 when the session is no longer resident.
	BaseKey string `json:"base_key,omitempty"`
	// Family, N, D, K, Height and Weights describe the base instance
	// inline, exactly as in ScheduleRequest (mvm and cdag are not
	// patchable, so M and Graph have no place here).
	Family  string     `json:"family,omitempty"`
	N       int        `json:"n,omitempty"`
	D       int        `json:"d,omitempty"`
	K       int        `json:"k,omitempty"`
	Height  int        `json:"height,omitempty"`
	Weights WeightSpec `json:"weights,omitempty"`
	// Deltas are the weight overrides defining the patched instance —
	// the full target state relative to the *base* weights, not to any
	// previous patch. Duplicate nodes merge last-wins.
	Deltas []PatchDelta `json:"deltas"`
	// BudgetsBits lists the fast-memory budgets to answer after the
	// patch, all positive; answers come back in the same order.
	BudgetsBits []int64 `json:"budgets_bits"`
	// TimeoutMS optionally overrides the server's default deadline for
	// the whole patch + re-solve, clamped to its maximum.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// BaseInstance converts the inline base fields to their canonical
// solve.Instance (deltas not yet attached).
func (r *PatchRequest) BaseInstance() (solve.Instance, error) {
	sr := ScheduleRequest{
		Family: r.Family,
		N:      r.N, D: r.D,
		K: r.K, Height: r.Height,
		Weights: r.Weights,
	}
	return sr.Instance()
}

// PatchResponse answers one patch: per-budget items in request order,
// the patched instance's bounds, the session-pool disposition and the
// incremental-engine work counters.
type PatchResponse struct {
	Workload string `json:"workload"`
	// BaseKey identifies the base instance's warm session; pass it as
	// base_key in subsequent patch requests to skip the inline base.
	// PatchKey is the patched instance's budget-free identity — the
	// shape key its cold-solve results are cached under.
	BaseKey          string      `json:"base_key"`
	PatchKey         string      `json:"patch_key"`
	LowerBoundBits   int64       `json:"lower_bound_bits"`
	MinExistenceBits int64       `json:"min_existence_bits"`
	Items            []SweepItem `json:"items"`
	Succeeded        int         `json:"succeeded"`
	Failed           int         `json:"failed"`
	// Session is "hit" when the patch was applied to an existing warm
	// session, "miss" when a base session was built cold, "shared" when
	// a concurrent request built it.
	Session string `json:"session"`
	// DeltasApplied counts the canonical deltas defining the target
	// state; ChangedNodes counts the node weights actually written (the
	// diff against the session's current state — 0 means the session
	// was already there and no memo cell was touched).
	DeltasApplied int `json:"deltas_applied"`
	ChangedNodes  int `json:"changed_nodes"`
	// CellsInvalidated / CellsReused report the memo cells cleared by
	// dependency-tracked invalidation versus those that survived — the
	// work the incremental re-solve avoided redoing.
	CellsInvalidated int64 `json:"cells_invalidated"`
	CellsReused      int64 `json:"cells_reused"`
	ElapsedUS        int64 `json:"elapsed_us"`
	// Cost is the per-request cost accounting block.
	Cost *CostMeta `json:"cost,omitempty"`
}

// PeerScheduleRequest is the body of the internal replica-to-replica
// peer-fill protocol (POST /v1/peer/schedule): a replica that missed
// its local cache forwards the schedule request to the key's ring
// owner instead of cold-solving. The endpoint is loop-guarded by the
// X-Wrbpg-Peer-Hop header — an owner answering a peer request never
// forwards again — so ring disagreement costs at most one wasted hop.
type PeerScheduleRequest struct {
	// Req is the schedule request exactly as the forwarder would solve
	// it locally (the forwarder sets include_moves so the filled cache
	// entry keeps the full move list, and timeout_ms to its peer-fill
	// deadline slice).
	Req ScheduleRequest `json:"req"`
	// Key is the forwarder's content-addressed key for Req at its
	// budget. The owner recomputes the key and rejects a mismatch with
	// a 400 — two replicas disagreeing on canonicalization (version
	// skew) must fail loudly, not silently split the fleet's cache.
	Key string `json:"key,omitempty"`
	// Origin is the forwarding replica's advertised URL (diagnostics
	// and the owner's peer-traffic logs; never routing).
	Origin string `json:"origin,omitempty"`
	// TraceParent is the forwarder's trace position ("traceid:spanid",
	// obs.TraceParent). It travels as the X-Wrbpg-Trace-Parent header —
	// the peer client injects it, the owner reads the header — so it is
	// excluded from the JSON body and old/new replicas interoperate.
	TraceParent string `json:"-"`
}

// PeerScheduleResponse is the 200 body of POST /v1/peer/schedule. When
// the forwarder propagated trace context, Trace carries the owner's
// span subtree for the forwarder to graft under its peer.fill span, so
// GET /v1/trace/{id} on the forwarder shows the complete cross-replica
// tree.
type PeerScheduleResponse struct {
	Result *ScheduleResult  `json:"result"`
	Trace  *obs.TraceExport `json:"trace,omitempty"`
}

// BatchRequest fans out independent schedule requests.
type BatchRequest struct {
	Requests []ScheduleRequest `json:"requests"`
}

// BatchItem is one batch element's outcome: exactly one of Result or
// Error is set (partial-failure reporting).
type BatchItem struct {
	Index  int             `json:"index"`
	Result *ScheduleResult `json:"result,omitempty"`
	Error  *Error          `json:"error,omitempty"`
}

// BatchResponse reports every item plus summary counts.
type BatchResponse struct {
	Items     []BatchItem `json:"items"`
	Succeeded int         `json:"succeeded"`
	Failed    int         `json:"failed"`
}

// LowerBoundResult answers GET /v1/lowerbound: the compulsory I/O
// lower bound and the smallest budget at which any schedule exists.
type LowerBoundResult struct {
	Workload         string `json:"workload"`
	LowerBoundBits   int64  `json:"lower_bound_bits"`
	MinExistenceBits int64  `json:"min_existence_bits"`
	Nodes            int    `json:"nodes"`
	Edges            int    `json:"edges"`
	TotalWeightBits  int64  `json:"total_weight_bits"`
	SourceWeightBits int64  `json:"source_weight_bits"`
	SinkWeightBits   int64  `json:"sink_weight_bits"`
}

// Error is the structured error body of every non-2xx API response.
type Error struct {
	// Status is the HTTP status code.
	Status int `json:"status"`
	// Message is a human-readable description of what was wrong with
	// the request (or what failed serving it).
	Message string `json:"error"`
	// Reason, when set, classifies the abort machine-readably:
	// "deadline", "budget", "panic", "canceled", "shed" or "other".
	Reason string `json:"reason,omitempty"`
	// RetryAfterS, on a 429, is the server's queue-drain estimate in
	// seconds — the same value it sends in the Retry-After header.
	RetryAfterS int64 `json:"retry_after_s,omitempty"`
}

func (e *Error) Error() string { return e.Message }

// Errorf builds a structured Error.
func Errorf(status int, format string, args ...any) *Error {
	return &Error{Status: status, Message: fmt.Sprintf(format, args...)}
}

// WithReason stamps the machine-readable abort classification and
// returns e, for chaining off Errorf.
func (e *Error) WithReason(reason string) *Error {
	e.Reason = reason
	return e
}

// WithRetryAfter stamps the retry estimate (seconds) and returns e,
// for chaining off Errorf.
func (e *Error) WithRetryAfter(seconds int64) *Error {
	e.RetryAfterS = seconds
	return e
}

// Elapsed returns the microseconds since start, for servers stamping
// per-request timing onto results.
func Elapsed(start time.Time) int64 { return time.Since(start).Microseconds() }
