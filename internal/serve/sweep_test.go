package serve

import (
	"encoding/json"
	"net/http"
	"testing"

	"wrbpg/internal/serve/wire"
)

// sweepReq is the canonical test sweep: a small ktree instance with
// budgets spanning infeasible through comfortable.
func sweepReq(budgets []int64) map[string]any {
	return map[string]any{
		"family":       "ktree",
		"k":            3,
		"height":       3,
		"budgets_bits": budgets,
	}
}

func decodeSweep(t *testing.T, body []byte) wire.SweepResponse {
	t.Helper()
	var sr wire.SweepResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatalf("decoding sweep response: %v\n%s", err, body)
	}
	return sr
}

// TestSweepWarmSession: a sweep answers every budget in order, agrees
// with the single-solve endpoint, and the second identical sweep is a
// session-pool hit that never touches the cold solver.
func TestSweepWarmSession(t *testing.T) {
	ts, _, solves := newTestServer(t, Options{})

	// Bounds first, so the budget list brackets the existence bound.
	var lb wire.LowerBoundResult
	if resp := getJSON(t, ts.URL+"/v1/lowerbound?family=ktree&k=3&height=3", &lb); resp.StatusCode != http.StatusOK {
		t.Fatalf("lowerbound: %d", resp.StatusCode)
	}
	min := lb.MinExistenceBits
	budgets := []int64{min + 9, min - 1, min + 4, min, min + 9}

	resp, body := postJSON(t, ts.URL+"/v1/schedule/sweep", sweepReq(budgets))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep: %d\n%s", resp.StatusCode, body)
	}
	sr := decodeSweep(t, body)
	if sr.Session != "miss" || len(sr.Items) != len(budgets) || sr.Failed != 0 || sr.Succeeded != len(budgets) {
		t.Fatalf("first sweep: %+v", sr)
	}
	if sr.MinExistenceBits != min || sr.LowerBoundBits != lb.LowerBoundBits {
		t.Errorf("sweep bounds (%d, %d) disagree with /v1/lowerbound (%d, %d)",
			sr.LowerBoundBits, sr.MinExistenceBits, lb.LowerBoundBits, min)
	}
	for i, it := range sr.Items {
		if it.BudgetBits != budgets[i] {
			t.Fatalf("item %d budget %d, want %d (order must be preserved)", i, it.BudgetBits, budgets[i])
		}
		if wantFeasible := budgets[i] >= min; it.Feasible != wantFeasible || it.Error != nil {
			t.Errorf("item %d: feasible=%v err=%v, want feasible=%v err=nil", i, it.Feasible, it.Error, wantFeasible)
		}
	}
	if sr.Items[0].CostBits != sr.Items[4].CostBits {
		t.Errorf("identical budgets answered differently: %d vs %d", sr.Items[0].CostBits, sr.Items[4].CostBits)
	}

	// Cross-check one budget against the single-solve endpoint.
	resp, body = postJSON(t, ts.URL+"/v1/schedule", map[string]any{
		"family": "ktree", "k": 3, "height": 3, "budget_bits": min + 4,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("schedule: %d\n%s", resp.StatusCode, body)
	}
	var one wire.ScheduleResult
	if err := json.Unmarshal(body, &one); err != nil {
		t.Fatal(err)
	}
	if one.CostBits != sr.Items[2].CostBits {
		t.Errorf("sweep cost %d at budget %d disagrees with /v1/schedule cost %d",
			sr.Items[2].CostBits, min+4, one.CostBits)
	}

	// Identical sweep again: session hit, no solver invocation (the
	// solve hook only fires for Run, which sweeps never call — so
	// instead assert via counters and the session disposition).
	before := solves.Load()
	resp, body = postJSON(t, ts.URL+"/v1/schedule/sweep", sweepReq(budgets))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second sweep: %d", resp.StatusCode)
	}
	if sr2 := decodeSweep(t, body); sr2.Session != "hit" {
		t.Fatalf("second sweep session = %q, want hit", sr2.Session)
	}
	if solves.Load() != before {
		t.Errorf("warm sweep invoked the cold solver")
	}

	var st Stats
	getJSON(t, ts.URL+"/statsz", &st)
	if st.Sweeps != 2 || st.SweepBudgets != uint64(2*len(budgets)) ||
		st.SessionMisses != 1 || st.SessionHits != 1 || st.SessionsLive != 1 {
		t.Errorf("sweep counters: %+v", st)
	}
	if st.SweepWorkspaces < 1 {
		t.Errorf("workspace pool allocated nothing: %+v", st)
	}
}

// TestSweepValidation: malformed sweeps are structured 400s.
func TestSweepValidation(t *testing.T) {
	ts, _, _ := newTestServer(t, Options{MaxSweepBudgets: 4})
	cases := []struct {
		name string
		body map[string]any
		want int
	}{
		{"empty budgets", sweepReq([]int64{}), http.StatusBadRequest},
		{"too many budgets", sweepReq([]int64{1, 2, 3, 4, 5}), http.StatusBadRequest},
		{"non-positive budget", sweepReq([]int64{1024, 0}), http.StatusBadRequest},
		{"bad family", map[string]any{"family": "nope", "budgets_bits": []int64{64}}, http.StatusBadRequest},
		{"bad weights", map[string]any{
			"family": "ktree", "k": 3, "height": 3,
			"weights":      map[string]any{"word_bits": -1, "input_words": 1, "node_words": 1},
			"budgets_bits": []int64{64},
		}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, body := postJSON(t, ts.URL+"/v1/schedule/sweep", tc.body)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: code %d, want %d\n%s", tc.name, resp.StatusCode, tc.want, body)
		}
		var we wire.Error
		if err := json.Unmarshal(body, &we); err != nil || we.Message == "" {
			t.Errorf("%s: unstructured error body %s", tc.name, body)
		}
	}

	// GET is rejected.
	resp, err := http.Get(ts.URL + "/v1/schedule/sweep")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET sweep: code %d, want 405", resp.StatusCode)
	}
}

// TestSweepSessionEviction: distinct shapes beyond the pool capacity
// evict LRU sessions; the pool never exceeds its cap and evicted shapes
// rebuild as misses.
func TestSweepSessionEviction(t *testing.T) {
	ts, s, _ := newTestServer(t, Options{SweepSessions: 2})
	shapes := [][2]int{{2, 2}, {3, 2}, {2, 3}}
	for _, sh := range shapes {
		body := map[string]any{
			"family": "ktree", "k": sh[0], "height": sh[1], "budgets_bits": []int64{4096},
		}
		if resp, b := postJSON(t, ts.URL+"/v1/schedule/sweep", body); resp.StatusCode != http.StatusOK {
			t.Fatalf("sweep k=%d h=%d: %d\n%s", sh[0], sh[1], resp.StatusCode, b)
		}
	}
	if live := s.sessions.Len(); live != 2 {
		t.Errorf("sessions live = %d, want pool cap 2", live)
	}
	// The first shape was evicted: sweeping it again is a miss.
	resp, b := postJSON(t, ts.URL+"/v1/schedule/sweep", map[string]any{
		"family": "ktree", "k": 2, "height": 2, "budgets_bits": []int64{4096},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("re-sweep: %d", resp.StatusCode)
	}
	if sr := decodeSweep(t, b); sr.Session != "miss" {
		t.Errorf("evicted shape re-sweep session = %q, want miss", sr.Session)
	}
}
