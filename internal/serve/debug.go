// The operator-facing debug surface, served on a separate listener
// (wrbpgd -debug-addr) so profiling and metrics scraping never share a
// port — or a blast radius — with the public API.

package serve

import (
	"net/http"
	"net/http/pprof"
)

// DebugHandler returns the debug mux: the standard net/http/pprof
// endpoints plus the merged Prometheus exposition.
//
//	GET /debug/pprof/           profile index
//	GET /debug/pprof/profile    30s CPU profile (?seconds=N)
//	GET /debug/pprof/heap       heap profile (also goroutine, block, …)
//	GET /debug/pprof/trace      execution trace (?seconds=N)
//	GET /metrics                Prometheus text exposition
//
// Bind it to a loopback or otherwise access-controlled address: CPU
// profiling and execution tracing cost real resources, so the debug
// listener must never face untrusted clients.
func (s *Server) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/metrics", s.MetricsHandler())
	return mux
}
