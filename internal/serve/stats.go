package serve

import (
	"sync/atomic"
	"time"

	"wrbpg/internal/schedcache"
)

// latencyBoundsUS are the upper bounds (µs) of the solve-latency
// histogram buckets; the final implicit bucket is +Inf. Solves span
// microsecond cache-adjacent paths to multi-second degraded solves, so
// the buckets are roughly logarithmic.
var latencyBoundsUS = [...]int64{
	50, 100, 250, 500,
	1_000, 2_500, 5_000, 10_000, 25_000, 50_000,
	100_000, 250_000, 500_000,
	1_000_000, 2_500_000, 5_000_000,
}

// metrics is the server's lock-free counter set; GET /statsz snapshots
// it without contending with the request path.
type metrics struct {
	requests      atomic.Uint64 // POST /v1/schedule requests (incl. batch items)
	batches       atomic.Uint64 // POST /v1/schedule/batch requests
	badRequests   atomic.Uint64 // structured 4xx responses
	solves        atomic.Uint64 // solver invocations (cache misses)
	fallbacks     atomic.Uint64 // solves degraded to the baseline
	solveErrors   atomic.Uint64 // solves that returned no schedule at all
	inflight      atomic.Int64  // solver invocations currently running
	sweeps        atomic.Uint64 // POST /v1/schedule/sweep requests
	sweepBudgets  atomic.Uint64 // budgets answered across all sweeps
	sessionHits   atomic.Uint64 // sweeps answered from an existing warm session
	sessionMisses atomic.Uint64 // sweeps that built (or joined building) a session
	wsAllocs      atomic.Uint64 // sweep workspaces allocated (pool misses)
	latencyUnder  [len(latencyBoundsUS)]atomic.Uint64
	latencyOver   atomic.Uint64 // +Inf bucket
	latencySumUS  atomic.Int64
	latencyCount  atomic.Uint64
}

// observeSolve records one completed solver invocation.
func (m *metrics) observeSolve(d time.Duration, fallback, failed bool) {
	m.solves.Add(1)
	if fallback {
		m.fallbacks.Add(1)
	}
	if failed {
		m.solveErrors.Add(1)
	}
	us := d.Microseconds()
	m.latencySumUS.Add(us)
	m.latencyCount.Add(1)
	for i, b := range latencyBoundsUS {
		if us <= b {
			m.latencyUnder[i].Add(1)
			return
		}
	}
	m.latencyOver.Add(1)
}

// LatencyBucket is one histogram bucket in the /statsz response.
type LatencyBucket struct {
	// LEUS is the bucket's inclusive upper bound in microseconds;
	// -1 marks the +Inf bucket.
	LEUS  int64  `json:"le_us"`
	Count uint64 `json:"count"`
}

// Stats is the GET /statsz response body.
type Stats struct {
	UptimeS     float64          `json:"uptime_s"`
	Requests    uint64           `json:"requests"`
	Batches     uint64           `json:"batches"`
	BadRequests uint64           `json:"bad_requests"`
	Cache       schedcache.Stats `json:"cache"`
	Solves      uint64           `json:"solves"`
	Fallbacks   uint64           `json:"fallbacks"`
	SolveErrors uint64           `json:"solve_errors"`
	InFlight    int64            `json:"in_flight"`
	// Sweep-engine counters: requests and budgets served by
	// POST /v1/schedule/sweep, warm-session pool dispositions, sessions
	// currently live, and workspace allocations (sync.Pool misses — flat
	// under steady-state traffic).
	Sweeps          uint64 `json:"sweeps"`
	SweepBudgets    uint64 `json:"sweep_budgets"`
	SessionHits     uint64 `json:"session_hits"`
	SessionMisses   uint64 `json:"session_misses"`
	SessionsLive    int    `json:"sessions_live"`
	SweepWorkspaces uint64 `json:"sweep_workspaces"`
	// SolveLatency is the cumulative histogram of solver wall-clock
	// times (cache hits excluded — they never invoke the solver).
	SolveLatency   []LatencyBucket `json:"solve_latency"`
	SolveLatencyUS int64           `json:"solve_latency_sum_us"`
}

// snapshot assembles the exported view.
func (m *metrics) snapshot(uptime time.Duration, cache schedcache.Stats, sessionsLive int) Stats {
	st := Stats{
		UptimeS:         uptime.Seconds(),
		Requests:        m.requests.Load(),
		Batches:         m.batches.Load(),
		BadRequests:     m.badRequests.Load(),
		Cache:           cache,
		Solves:          m.solves.Load(),
		Fallbacks:       m.fallbacks.Load(),
		SolveErrors:     m.solveErrors.Load(),
		InFlight:        m.inflight.Load(),
		Sweeps:          m.sweeps.Load(),
		SweepBudgets:    m.sweepBudgets.Load(),
		SessionHits:     m.sessionHits.Load(),
		SessionMisses:   m.sessionMisses.Load(),
		SessionsLive:    sessionsLive,
		SweepWorkspaces: m.wsAllocs.Load(),
		SolveLatencyUS:  m.latencySumUS.Load(),
	}
	for i, b := range latencyBoundsUS {
		st.SolveLatency = append(st.SolveLatency, LatencyBucket{LEUS: b, Count: m.latencyUnder[i].Load()})
	}
	st.SolveLatency = append(st.SolveLatency, LatencyBucket{LEUS: -1, Count: m.latencyOver.Load()})
	return st
}
