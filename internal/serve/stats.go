// Serving metrics, rebuilt over the obs registry: every counter the
// old lock-free struct tracked is now a registered obs metric, so one
// set of atomics feeds both GET /statsz (the original JSON view, kept
// wire-compatible) and GET /metrics (Prometheus text exposition). Each
// Server owns its own registry; the handler merges it with obs.Default
// (solver-family, guard and worker-pool counters) at exposition time.

package serve

import (
	"strconv"
	"time"

	"wrbpg/internal/cluster"
	"wrbpg/internal/obs"
	"wrbpg/internal/schedcache"
	"wrbpg/internal/solve"
)

// latencyBoundsUS are the upper bounds (µs) of the solve-latency
// histogram buckets; the final implicit bucket is +Inf. Solves span
// microsecond cache-adjacent paths to multi-second degraded solves, so
// the buckets are roughly logarithmic. The exposition keeps microsecond
// units (metric wrbpg_solve_latency_us) so /statsz reads identical
// bucket values — int64 µs round-trip exactly through float64.
var latencyBoundsUS = [...]int64{
	50, 100, 250, 500,
	1_000, 2_500, 5_000, 10_000, 25_000, 50_000,
	100_000, 250_000, 500_000,
	1_000_000, 2_500_000, 5_000_000,
}

// metrics holds the server's pre-resolved metric handles. Updating any
// of them is lock-free (one atomic add); /statsz and /metrics snapshot
// without contending with the request path.
type metrics struct {
	// HTTP request counters by endpoint; schedule includes batch items
	// (each item runs the shared schedule path), matching the original
	// /statsz "requests" semantics.
	reqSchedule *obs.Counter
	reqBatch    *obs.Counter
	reqSweep    *obs.Counter
	reqPatch    *obs.Counter
	reqPeer     *obs.Counter
	badRequests *obs.Counter

	solves      *obs.Counter
	fallbacks   *obs.Counter
	fallbackVec *obs.CounterVec // by classified reason
	solveErrors *obs.Counter
	inflight    *obs.Gauge
	latency     *obs.Histogram

	sweepBudgets  *obs.Counter
	sessionHits   *obs.Counter
	sessionMisses *obs.Counter
	wsAllocs      *obs.Counter

	// Incremental-engine counters: budgets answered after a patch,
	// deltas received, node weights actually written (the diff against
	// the session's current state), and patches whose diff was empty.
	patchBudgets *obs.Counter
	patchDeltas  *obs.Counter
	patchChanged *obs.Counter
	patchNoops   *obs.Counter

	// Overload-control instruments: sheds by mode (pre-resolved so
	// every mode appears in the exposition from startup), the admission
	// queue depth, the slot-hold histogram feeding the wait estimator,
	// and the fallback-storm breaker state/trips.
	shedVec      *obs.CounterVec
	shedBy       map[string]*obs.Counter
	queueDepth   *obs.Gauge
	holdUS       *obs.Histogram
	breakerState *obs.Gauge
	breakerTrips *obs.Counter

	// General-DAG anytime-tier counters: branch-and-bound states
	// expanded, states pruned against the shared incumbent, and
	// incumbent improvements, summed across all anytime solves.
	anytimeExpanded     *obs.Counter
	anytimePruned       *obs.Counter
	anytimeImprovements *obs.Counter

	// Cluster-mode instruments: peer-fill attempts by outcome
	// (pre-resolved so every outcome appears in the exposition from
	// startup) and owner 429s propagated to the end client.
	peerFillVec        *obs.CounterVec
	peerFillBy         map[string]*obs.Counter
	peerShedPropagated *obs.Counter

	traced *obs.Counter

	// reqSeconds is the end-to-end API request latency histogram
	// (seconds, tracked endpoints only — see withRequestObs). Traced
	// requests attach their trace ID to the matching bucket's exemplar
	// slot, surfaced in the OpenMetrics exposition.
	reqSeconds *obs.Histogram
}

// peerFill counts one peer-fill attempt by outcome.
func (m *metrics) peerFill(outcome string) {
	if c, ok := m.peerFillBy[outcome]; ok {
		c.Inc()
		return
	}
	m.peerFillVec.With(outcome).Inc()
}

// shed counts one shed decision by mode.
func (m *metrics) shed(mode string) {
	if c, ok := m.shedBy[mode]; ok {
		c.Inc()
		return
	}
	m.shedVec.With(mode).Inc()
}

// newMetrics registers the server's metric families in reg and returns
// the resolved handles.
func newMetrics(reg *obs.Registry) *metrics {
	req := reg.CounterVec("wrbpg_http_requests_total",
		"API requests by endpoint; schedule includes batch items.", "endpoint")
	bounds := make([]float64, len(latencyBoundsUS))
	for i, b := range latencyBoundsUS {
		bounds[i] = float64(b)
	}
	shedVec := reg.CounterVec("wrbpg_shed_total",
		"Requests shed by overload control, by mode (queue_full, doomed, canceled, degraded, breaker).", "mode")
	shedBy := make(map[string]*obs.Counter)
	for _, mode := range []string{shedQueueFull, shedDoomed, shedCanceled, shedDegraded, shedBreaker} {
		shedBy[mode] = shedVec.With(mode)
	}
	peerFillVec := reg.CounterVec("wrbpg_peer_fill_total",
		"Peer-fill attempts by outcome (filled, degraded, shed, timeout, error).", "outcome")
	peerFillBy := make(map[string]*obs.Counter)
	for _, outcome := range []string{peerFilled, peerDegraded, peerShed, peerTimeout, peerError} {
		peerFillBy[outcome] = peerFillVec.With(outcome)
	}
	return &metrics{
		reqSchedule: req.With("schedule"),
		reqBatch:    req.With("batch"),
		reqSweep:    req.With("sweep"),
		reqPatch:    req.With("patch"),
		reqPeer:     req.With("peer"),
		badRequests: reg.Counter("wrbpg_http_bad_requests_total",
			"Structured 4xx responses."),
		solves: reg.Counter("wrbpg_solves_total",
			"Solver invocations (cache misses)."),
		fallbacks: reg.Counter("wrbpg_solve_fallbacks_total",
			"Solves degraded to the baseline scheduler."),
		fallbackVec: reg.CounterVec("wrbpg_fallback_total",
			"Fallbacks and per-budget sweep aborts by classified reason (deadline, budget, panic, canceled, shed, other).", "reason"),
		solveErrors: reg.Counter("wrbpg_solve_errors_total",
			"Solves that returned no schedule at all."),
		inflight: reg.Gauge("wrbpg_solves_inflight",
			"Solver invocations currently running."),
		latency: reg.Histogram("wrbpg_solve_latency_us",
			"Solver wall-clock time per invocation, microseconds (cache hits excluded).", bounds),
		sweepBudgets: reg.Counter("wrbpg_sweep_budgets_total",
			"Budgets answered across all sweep requests."),
		sessionHits: reg.Counter("wrbpg_sweep_session_hits_total",
			"Sweeps answered from an existing warm session."),
		sessionMisses: reg.Counter("wrbpg_sweep_session_misses_total",
			"Sweeps that built (or joined building) a session."),
		wsAllocs: reg.Counter("wrbpg_sweep_workspace_allocs_total",
			"Sweep workspaces allocated (sync.Pool misses)."),
		patchBudgets: reg.Counter("wrbpg_patch_budgets_total",
			"Budgets answered across all patch requests."),
		patchDeltas: reg.Counter("wrbpg_patch_deltas_total",
			"Canonical weight deltas received by patch requests."),
		patchChanged: reg.Counter("wrbpg_patch_changed_nodes_total",
			"Node weights actually written by patches (the diff against the session's current state)."),
		patchNoops: reg.Counter("wrbpg_patch_noop_total",
			"Patches whose diff was empty (the session was already at the target state)."),
		shedVec: shedVec,
		shedBy:  shedBy,
		queueDepth: reg.Gauge("wrbpg_admission_queue_depth",
			"Requests currently queued for a solver slot."),
		holdUS: reg.Histogram("wrbpg_admission_hold_us",
			"Solver-slot hold time per admitted request, microseconds (the queue-wait estimator's input).", bounds),
		breakerState: reg.Gauge("wrbpg_breaker_state",
			"Fallback-storm breaker state: 0 closed, 1 half-open, 2 open."),
		breakerTrips: reg.Counter("wrbpg_breaker_trips_total",
			"Times the fallback-storm breaker opened."),
		anytimeExpanded: reg.Counter("wrbpg_anytime_expanded_total",
			"Branch-and-bound states expanded by the general-DAG anytime tier."),
		anytimePruned: reg.Counter("wrbpg_anytime_pruned_total",
			"Anytime-tier states pruned against the shared incumbent bound."),
		anytimeImprovements: reg.Counter("wrbpg_anytime_improvements_total",
			"Incumbent improvements found by anytime searches."),
		peerFillVec: peerFillVec,
		peerFillBy:  peerFillBy,
		peerShedPropagated: reg.Counter("wrbpg_peer_shed_propagated_total",
			"Owner-replica 429s surfaced to the end client because the local queue was saturated too."),
		traced: reg.Counter("wrbpg_traced_requests_total",
			"Requests that opted into tracing via the X-Wrbpg-Trace header."),
		reqSeconds: reg.Histogram("wrbpg_request_seconds",
			"End-to-end API request latency in seconds (schedule, batch, sweep, patch, lowerbound); traced requests attach their trace ID as an OpenMetrics exemplar.",
			requestSecondsBounds),
	}
}

// requestSecondsBounds buckets wrbpg_request_seconds: sub-millisecond
// cache hits through multi-second degraded solves, with extra
// resolution around the 250ms latency-SLO target.
var requestSecondsBounds = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// registerFuncs exposes quantities other components already track
// (cache counters, pool occupancy, uptime) without a second counter on
// any hot path.
func (s *Server) registerFuncs() {
	reg, cache, sessions := s.reg, s.cache, s.sessions
	reg.CounterFunc("wrbpg_cache_hits_total",
		"Schedule-cache hits.", func() float64 { return float64(cache.Snapshot().Hits) })
	reg.CounterFunc("wrbpg_cache_misses_total",
		"Schedule-cache misses.", func() float64 { return float64(cache.Snapshot().Misses) })
	reg.CounterFunc("wrbpg_cache_shared_total",
		"Schedule-cache singleflight joins (waiters sharing a leader's solve).",
		func() float64 { return float64(cache.Snapshot().Shared) })
	reg.CounterFunc("wrbpg_cache_stores_total",
		"Schedule-cache entries stored.", func() float64 { return float64(cache.Snapshot().Stores) })
	reg.CounterFunc("wrbpg_cache_evictions_total",
		"Schedule-cache LRU evictions.", func() float64 { return float64(cache.Snapshot().Evictions) })
	reg.GaugeFunc("wrbpg_cache_entries",
		"Schedule-cache entries currently live.", func() float64 { return float64(cache.Len()) })
	// Per-shard cache series expose the distribution skew the aggregate
	// counters hide; the callbacks read live shard state at exposition
	// time, so the request path pays nothing extra.
	shardEntries := reg.GaugeFuncVec("wrbpg_cache_shard_entries",
		"Schedule-cache entries currently live, by shard.", "shard")
	shardEvictions := reg.CounterFuncVec("wrbpg_cache_shard_evictions_total",
		"Schedule-cache LRU evictions, by shard.", "shard")
	shardCapacity := reg.GaugeFuncVec("wrbpg_cache_shard_capacity",
		"Schedule-cache per-shard entry capacity.", "shard")
	for i := 0; i < cache.Shards(); i++ {
		i := i
		label := strconv.Itoa(i)
		shardEntries.With(label, func() float64 { return float64(cache.ShardStat(i).Entries) })
		shardEvictions.With(label, func() float64 { return float64(cache.ShardStat(i).Evictions) })
		shardCapacity.With(label, func() float64 { return float64(cache.ShardStat(i).Capacity) })
	}
	if s.cluster != nil {
		s.cluster.RegisterMetrics(reg)
	}
	reg.GaugeFunc("wrbpg_sweep_sessions_live",
		"Warm solver sessions currently pooled.", func() float64 { return float64(sessions.Len()) })
	reg.GaugeFunc("wrbpg_sweep_session_capacity",
		"Warm-session pool capacity (Options.SweepSessions); live/capacity is pool occupancy.",
		func() float64 { return float64(sessions.Snapshot().Capacity) })
	reg.CounterFunc("wrbpg_sweep_session_evictions_total",
		"Warm sessions evicted from the pool (LRU); a base_key patch against an evicted session is a 404.",
		func() float64 { return float64(sessions.Snapshot().Evictions) })
	reg.GaugeFunc("wrbpg_admission_queue_limit",
		"Admission queue capacity (Options.MaxQueue); depth/limit is queue occupancy.",
		func() float64 { return float64(s.opts.MaxQueue) })
	reg.GaugeFunc("wrbpg_traces_stored",
		"Completed request traces retained for GET /v1/trace/{id}.",
		func() float64 { return float64(s.traces.Len()) })
	reg.GaugeFunc("wrbpg_uptime_seconds",
		"Seconds since the server started.", func() float64 { return time.Since(s.start).Seconds() })
}

// observeSolve records one completed solver invocation. reason is the
// classified degradation cause ("" when the solve was optimal).
func (m *metrics) observeSolve(d time.Duration, fallback, failed bool, reason string) {
	m.solves.Inc()
	if fallback {
		m.fallbacks.Inc()
		if reason == "" {
			reason = "other"
		}
		m.fallbackVec.With(reason).Inc()
	}
	if failed {
		m.solveErrors.Inc()
	}
	m.latency.Observe(float64(d.Microseconds()))
}

// observeAnytime accumulates one anytime search's effort counters.
func (m *metrics) observeAnytime(a *solve.AnytimeInfo) {
	m.anytimeExpanded.Add(uint64(a.Expanded))
	m.anytimePruned.Add(uint64(a.Pruned))
	m.anytimeImprovements.Add(uint64(a.Improvements))
}

// LatencyBucket is one histogram bucket in the /statsz response.
type LatencyBucket struct {
	// LEUS is the bucket's inclusive upper bound in microseconds;
	// -1 marks the +Inf bucket.
	LEUS  int64  `json:"le_us"`
	Count uint64 `json:"count"`
}

// Stats is the GET /statsz response body.
type Stats struct {
	UptimeS     float64          `json:"uptime_s"`
	Requests    uint64           `json:"requests"`
	Batches     uint64           `json:"batches"`
	BadRequests uint64           `json:"bad_requests"`
	Cache       schedcache.Stats `json:"cache"`
	Solves      uint64           `json:"solves"`
	Fallbacks   uint64           `json:"fallbacks"`
	SolveErrors uint64           `json:"solve_errors"`
	InFlight    int64            `json:"in_flight"`
	// Sweep-engine counters: requests and budgets served by
	// POST /v1/schedule/sweep, warm-session pool dispositions, sessions
	// currently live, and workspace allocations (sync.Pool misses — flat
	// under steady-state traffic).
	Sweeps          uint64 `json:"sweeps"`
	SweepBudgets    uint64 `json:"sweep_budgets"`
	SessionHits     uint64 `json:"session_hits"`
	SessionMisses   uint64 `json:"session_misses"`
	SessionsLive    int    `json:"sessions_live"`
	SweepWorkspaces uint64 `json:"sweep_workspaces"`
	// Session-pool occupancy: capacity is Options.SweepSessions (the
	// LRU bound), evictions counts sessions dropped to admit new shapes
	// — a rising rate means the pool is too small for the live shape
	// set and base_key patches will 404.
	SessionCapacity  int    `json:"session_capacity"`
	SessionEvictions uint64 `json:"session_evictions"`
	// Incremental-engine counters: patch requests, budgets answered
	// after a patch, deltas received, node weights actually written and
	// empty-diff patches.
	Patches           uint64 `json:"patches"`
	PatchBudgets      uint64 `json:"patch_budgets"`
	PatchDeltas       uint64 `json:"patch_deltas"`
	PatchChangedNodes uint64 `json:"patch_changed_nodes"`
	PatchNoops        uint64 `json:"patch_noops"`
	// Overload-control counters: current admission-queue occupancy,
	// sheds by mode, and the fallback-storm breaker state
	// ("closed" / "half_open" / "open" / "disabled") with its trip
	// count. The handler fills QueueDepth/QueueLimit/Breaker from live
	// server state.
	QueueDepth   int64             `json:"queue_depth"`
	QueueLimit   int               `json:"queue_limit"`
	Shed         map[string]uint64 `json:"shed"`
	Breaker      string            `json:"breaker"`
	BreakerTrips uint64            `json:"breaker_trips"`
	// Anytime-tier counters: branch-and-bound effort across all
	// general-DAG solves.
	AnytimeExpanded     uint64 `json:"anytime_expanded,omitempty"`
	AnytimePruned       uint64 `json:"anytime_pruned,omitempty"`
	AnytimeImprovements uint64 `json:"anytime_improvements,omitempty"`
	// SolveLatency is the cumulative histogram of solver wall-clock
	// times (cache hits excluded — they never invoke the solver).
	SolveLatency   []LatencyBucket `json:"solve_latency"`
	SolveLatencyUS int64           `json:"solve_latency_sum_us"`
	// CacheShards breaks the schedule cache down by shard (entry count,
	// evictions, capacity), exposing key-distribution skew.
	CacheShards []schedcache.ShardStat `json:"cache_shards,omitempty"`
	// Cluster-mode section (absent on single-node servers): peer
	// requests served, fill attempts by outcome, owner 429s propagated
	// to end clients, and the fleet health report. The handler fills
	// Peers from live cluster state.
	Peers              *cluster.HealthReport `json:"peers,omitempty"`
	PeerRequests       uint64                `json:"peer_requests,omitempty"`
	PeerFill           map[string]uint64     `json:"peer_fill,omitempty"`
	PeerShedPropagated uint64                `json:"peer_shed_propagated,omitempty"`
}

// snapshot assembles the exported view from the registered metrics;
// the JSON shape predates the registry and stays wire-compatible.
func (m *metrics) snapshot(uptime time.Duration, cache, sessions schedcache.Stats) Stats {
	st := Stats{
		UptimeS:             uptime.Seconds(),
		Requests:            m.reqSchedule.Value(),
		Batches:             m.reqBatch.Value(),
		BadRequests:         m.badRequests.Value(),
		Cache:               cache,
		Solves:              m.solves.Value(),
		Fallbacks:           m.fallbacks.Value(),
		SolveErrors:         m.solveErrors.Value(),
		InFlight:            m.inflight.Value(),
		Sweeps:              m.reqSweep.Value(),
		SweepBudgets:        m.sweepBudgets.Value(),
		SessionHits:         m.sessionHits.Value(),
		SessionMisses:       m.sessionMisses.Value(),
		SessionsLive:        sessions.Entries,
		SweepWorkspaces:     m.wsAllocs.Value(),
		SessionCapacity:     sessions.Capacity,
		SessionEvictions:    sessions.Evictions,
		Patches:             m.reqPatch.Value(),
		PatchBudgets:        m.patchBudgets.Value(),
		PatchDeltas:         m.patchDeltas.Value(),
		PatchChangedNodes:   m.patchChanged.Value(),
		PatchNoops:          m.patchNoops.Value(),
		BreakerTrips:        m.breakerTrips.Value(),
		SolveLatencyUS:      int64(m.latency.Sum()),
		AnytimeExpanded:     m.anytimeExpanded.Value(),
		AnytimePruned:       m.anytimePruned.Value(),
		AnytimeImprovements: m.anytimeImprovements.Value(),
	}
	st.Shed = make(map[string]uint64, len(m.shedBy))
	for mode, c := range m.shedBy {
		st.Shed[mode] = c.Value()
	}
	for i, b := range latencyBoundsUS {
		st.SolveLatency = append(st.SolveLatency, LatencyBucket{LEUS: b, Count: m.latency.Bucket(i)})
	}
	st.SolveLatency = append(st.SolveLatency, LatencyBucket{LEUS: -1, Count: m.latency.Bucket(len(latencyBoundsUS))})
	return st
}
