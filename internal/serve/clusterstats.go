// GET /v1/cluster/stats: the fleet-wide stats fan-out. Any replica
// answers for the whole fleet by merging its own counters with every
// healthy peer's GET /statsz, scraped concurrently under the peer
// timeout. Unreachable peers degrade to an error row instead of
// failing the scrape — a partitioned fleet still reports the side you
// can see.

package serve

import (
	"context"
	"net/http"
	"sync"

	"wrbpg/internal/serve/wire"
)

// ReplicaStats is one replica's row in the fleet view.
type ReplicaStats struct {
	URL  string `json:"url"`
	Self bool   `json:"self,omitempty"`
	// Error marks a replica whose /statsz scrape failed (unreachable or
	// unhealthy); Stats is absent then.
	Error string `json:"error,omitempty"`
	Stats *Stats `json:"stats,omitempty"`
}

// ClusterStats is the GET /v1/cluster/stats response body: fleet
// totals over the reachable replicas plus the per-replica breakdown.
type ClusterStats struct {
	// Replicas counts cluster members including self; Healthy counts
	// members on the ring; Scraped counts members whose /statsz
	// answered this fan-out (totals sum over exactly these).
	Replicas int `json:"replicas"`
	Healthy  int `json:"healthy"`
	Scraped  int `json:"scraped"`
	// Fleet totals summed across scraped replicas. Solves versus
	// Requests is the fleet's duplicate-solve ratio; PeerFill outcomes
	// aggregate the replica-to-replica traffic.
	Requests           uint64            `json:"requests"`
	Solves             uint64            `json:"solves"`
	Fallbacks          uint64            `json:"fallbacks"`
	CacheHits          uint64            `json:"cache_hits"`
	CacheMisses        uint64            `json:"cache_misses"`
	PeerRequests       uint64            `json:"peer_requests"`
	PeerShedPropagated uint64            `json:"peer_shed_propagated"`
	Shed               map[string]uint64 `json:"shed"`
	PeerFill           map[string]uint64 `json:"peer_fill"`
	PerReplica         []ReplicaStats    `json:"per_replica"`
}

// handleClusterStats serves GET /v1/cluster/stats.
func (s *Server) handleClusterStats(w http.ResponseWriter, r *http.Request) {
	if s.cluster == nil {
		s.writeErr(w, wire.Errorf(http.StatusNotFound, "cluster mode disabled (no -peers)"))
		return
	}
	if r.Method != http.MethodGet {
		s.writeErr(w, wire.Errorf(http.StatusMethodNotAllowed, "GET required"))
		return
	}

	rep := s.cluster.Health()
	self := s.Stats()
	rows := make([]ReplicaStats, 1+len(rep.Peers))
	rows[0] = ReplicaStats{URL: s.cluster.Self(), Self: true, Stats: &self}

	// Scrape peers concurrently, each bounded by the peer timeout (a
	// stats scrape should never be slower than a fill). Unhealthy peers
	// are reported without a scrape attempt — the health loop already
	// established they are unreachable.
	var wg sync.WaitGroup
	for i, p := range rep.Peers {
		if !p.Healthy {
			rows[1+i] = ReplicaStats{URL: p.URL, Error: "unhealthy (off the ring)"}
			continue
		}
		wg.Add(1)
		go func(row *ReplicaStats, url string) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(r.Context(), s.cluster.PeerTimeout())
			defer cancel()
			var st Stats
			if err := s.cluster.GetJSON(ctx, url, "/statsz", &st); err != nil {
				*row = ReplicaStats{URL: url, Error: err.Error()}
				return
			}
			*row = ReplicaStats{URL: url, Stats: &st}
		}(&rows[1+i], p.URL)
	}
	wg.Wait()

	out := ClusterStats{
		Replicas:   rep.Total,
		Healthy:    rep.Healthy,
		Shed:       make(map[string]uint64),
		PeerFill:   make(map[string]uint64),
		PerReplica: rows,
	}
	for i := range rows {
		st := rows[i].Stats
		if st == nil {
			continue
		}
		out.Scraped++
		out.Requests += st.Requests
		out.Solves += st.Solves
		out.Fallbacks += st.Fallbacks
		out.CacheHits += st.Cache.Hits
		out.CacheMisses += st.Cache.Misses
		out.PeerRequests += st.PeerRequests
		out.PeerShedPropagated += st.PeerShedPropagated
		for mode, n := range st.Shed {
			out.Shed[mode] += n
		}
		for outcome, n := range st.PeerFill {
			out.PeerFill[outcome] += n
		}
	}
	writeJSON(w, http.StatusOK, out)
}
