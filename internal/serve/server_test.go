package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"wrbpg/internal/core"
	"wrbpg/internal/guard"
	"wrbpg/internal/serve/wire"
	"wrbpg/internal/solve"
)

// newTestServer returns an httptest server plus a counter of actual
// solver invocations (via the solve facade's observation hook), so
// tests can prove cache hits never touch the solver.
func newTestServer(t *testing.T, opts Options) (*httptest.Server, *Server, *atomic.Int64) {
	t.Helper()
	var solves atomic.Int64
	restore := solve.SetHook(func(name string, out solve.Outcome, err error) {
		solves.Add(1)
	})
	t.Cleanup(restore)
	s := New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts, s, &solves
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

func getJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp
}

func dwtRequest(budget int64) wire.ScheduleRequest {
	return wire.ScheduleRequest{Family: "dwt", N: 32, D: 4, BudgetBits: budget, IncludeMoves: true}
}

// TestScheduleColdThenWarm is the tentpole acceptance test: a cold
// request solves via internal/solve, an identical warm request is a
// cache hit served without invoking the solver, the two schedules are
// byte-identical, and /statsz reflects the hit/miss counts.
func TestScheduleColdThenWarm(t *testing.T) {
	ts, _, solves := newTestServer(t, Options{})
	req := dwtRequest(16 * 16)

	resp, body := postJSON(t, ts.URL+"/v1/schedule", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold: status %d: %s", resp.StatusCode, body)
	}
	var cold wire.ScheduleResult
	if err := json.Unmarshal(body, &cold); err != nil {
		t.Fatal(err)
	}
	if cold.Cache != "miss" || cold.Source != "optimal" {
		t.Fatalf("cold: cache=%q source=%q, want miss/optimal", cold.Cache, cold.Source)
	}
	if len(cold.Schedule) == 0 {
		t.Fatal("cold: moves requested but absent")
	}
	if got := solves.Load(); got != 1 {
		t.Fatalf("cold: solver ran %d times, want 1", got)
	}

	resp, body = postJSON(t, ts.URL+"/v1/schedule", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm: status %d: %s", resp.StatusCode, body)
	}
	var warm wire.ScheduleResult
	if err := json.Unmarshal(body, &warm); err != nil {
		t.Fatal(err)
	}
	if warm.Cache != "hit" {
		t.Fatalf("warm: cache=%q, want hit", warm.Cache)
	}
	if got := solves.Load(); got != 1 {
		t.Fatalf("warm: solver ran %d times, want still 1 (hit must not solve)", got)
	}
	if warm.CacheKey != cold.CacheKey || warm.CacheKey == "" {
		t.Fatalf("cache keys differ: %q vs %q", cold.CacheKey, warm.CacheKey)
	}

	// Byte-identical schedules: the content-addressing contract.
	enc := func(s core.Schedule) string {
		b, err := s.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if enc(cold.Schedule) != enc(warm.Schedule) {
		t.Fatal("warm schedule differs from cold solve")
	}

	var st Stats
	getJSON(t, ts.URL+"/statsz", &st)
	if st.Cache.Hits != 1 || st.Cache.Misses != 1 {
		t.Fatalf("statsz: hits=%d misses=%d, want 1/1", st.Cache.Hits, st.Cache.Misses)
	}
	if st.Solves != 1 {
		t.Fatalf("statsz: solves=%d, want 1", st.Solves)
	}
	if st.Requests != 2 {
		t.Fatalf("statsz: requests=%d, want 2", st.Requests)
	}
}

// TestScheduleValidation: malformed untrusted requests get structured
// 400s — never panics, never 500s.
func TestScheduleValidation(t *testing.T) {
	ts, _, solves := newTestServer(t, Options{})
	cases := []struct {
		name string
		body string
	}{
		{"not json", `{`},
		{"unknown field", `{"family":"dwt","n":32,"d":4,"budget_bits":256,"bogus":1}`},
		{"unknown family", `{"family":"quux","budget_bits":256}`},
		{"zero budget", `{"family":"dwt","n":32,"d":4,"budget_bits":0}`},
		{"negative budget", `{"family":"dwt","n":32,"d":4,"budget_bits":-5}`},
		{"mvm m=0", `{"family":"mvm","m":0,"n":8,"budget_bits":256}`},
		{"dwt n not 2^d multiple", `{"family":"dwt","n":33,"d":4,"budget_bits":256}`},
		{"ktree k too large", `{"family":"ktree","k":12,"height":2,"budget_bits":256}`},
		{"negative custom weights", `{"family":"dwt","n":32,"d":4,"budget_bits":256,"weights":{"word_bits":-16,"input_words":1,"node_words":1}}`},
		{"bad weight name", `{"family":"dwt","n":32,"d":4,"budget_bits":256,"weights":{"name":"halting"}}`},
		{"cdag without graph", `{"family":"cdag","budget_bits":256}`},
		{"cdag negative node weight", `{"family":"cdag","budget_bits":256,"graph":{"nodes":[{"w":-4},{"w":4,"parents":[0]}]}}`},
		{"cdag forward parent", `{"family":"cdag","budget_bits":256,"graph":{"nodes":[{"w":4,"parents":[1]},{"w":4}]}}`},
		{"budget below existence", `{"family":"dwt","n":32,"d":4,"budget_bits":1}`},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/v1/schedule", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		var e wire.Error
		derr := json.NewDecoder(resp.Body).Decode(&e)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
			continue
		}
		if derr != nil || e.Message == "" || e.Status != http.StatusBadRequest {
			t.Errorf("%s: unstructured error body (decode err %v, body %+v)", tc.name, derr, e)
		}
	}
	if got := solves.Load(); got != 0 {
		t.Fatalf("validation cases invoked the solver %d times", got)
	}
}

// TestScheduleCDAGFamily: an arbitrary CDAG in the spec format solves
// through the anytime tier (Complete on a graph this small, hence
// cacheable) and caches by content — node names don't affect the key,
// weights do.
func TestScheduleCDAGFamily(t *testing.T) {
	ts, _, _ := newTestServer(t, Options{})
	graph := func(name string) json.RawMessage {
		return json.RawMessage(fmt.Sprintf(
			`{"nodes":[{"w":8,"name":%q},{"w":8},{"w":16,"parents":[0,1]}]}`, name))
	}
	post := func(g json.RawMessage) wire.ScheduleResult {
		body := map[string]any{"family": "cdag", "budget_bits": 64, "graph": g}
		resp, raw := postJSON(t, ts.URL+"/v1/schedule", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, raw)
		}
		var out wire.ScheduleResult
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	a := post(graph("a"))
	if a.Cache != "miss" || a.Source != "anytime" {
		t.Fatalf("first cdag solve: cache=%q source=%q", a.Cache, a.Source)
	}
	if a.Anytime == nil || !a.Anytime.Complete {
		t.Fatalf("tiny cdag solve should report a complete anytime search, got %+v", a.Anytime)
	}
	b := post(graph("renamed"))
	if b.Cache != "hit" {
		t.Fatalf("renamed-but-identical cdag: cache=%q, want hit (names are not content)", b.Cache)
	}
}

// TestBatchPartialFailure: one malformed item reports its own error
// while its siblings succeed, with correct summary counts.
func TestBatchPartialFailure(t *testing.T) {
	ts, _, _ := newTestServer(t, Options{})
	batch := wire.BatchRequest{Requests: []wire.ScheduleRequest{
		dwtRequest(16 * 16),
		{Family: "mvm", M: 0, N: 8, BudgetBits: 256}, // malformed: MVM(0,n)
		{Family: "mvm", M: 4, N: 6, BudgetBits: 512},
	}}
	resp, body := postJSON(t, ts.URL+"/v1/schedule/batch", batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out wire.BatchResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Succeeded != 2 || out.Failed != 1 || len(out.Items) != 3 {
		t.Fatalf("batch summary: %d ok / %d failed / %d items", out.Succeeded, out.Failed, len(out.Items))
	}
	if out.Items[1].Error == nil || out.Items[1].Result != nil {
		t.Fatalf("item 1 should carry an error, got %+v", out.Items[1])
	}
	if out.Items[0].Result == nil || out.Items[2].Result == nil {
		t.Fatal("items 0 and 2 should carry results")
	}
	if out.Items[1].Error.Status != http.StatusBadRequest {
		t.Fatalf("item 1 error status = %d", out.Items[1].Error.Status)
	}

	// Oversized and empty batches are rejected outright.
	big := wire.BatchRequest{Requests: make([]wire.ScheduleRequest, 65)}
	if resp, _ := postJSON(t, ts.URL+"/v1/schedule/batch", big); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized batch: status %d, want 400", resp.StatusCode)
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/schedule/batch", wire.BatchRequest{}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d, want 400", resp.StatusCode)
	}
}

// TestBatchDedupsAgainstCache: a batch of identical requests triggers
// at most one solve (singleflight + cache), and every item succeeds.
func TestBatchDedupsAgainstCache(t *testing.T) {
	ts, _, solves := newTestServer(t, Options{})
	reqs := make([]wire.ScheduleRequest, 8)
	for i := range reqs {
		reqs[i] = dwtRequest(16 * 16)
	}
	resp, body := postJSON(t, ts.URL+"/v1/schedule/batch", wire.BatchRequest{Requests: reqs})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out wire.BatchResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Succeeded != 8 || out.Failed != 0 {
		t.Fatalf("batch: %d ok / %d failed, want 8/0", out.Succeeded, out.Failed)
	}
	if got := solves.Load(); got != 1 {
		t.Fatalf("identical batch items ran the solver %d times, want 1", got)
	}
}

// TestFallbackFlaggedAndNotCached: a solve degraded at its deadline is
// flagged in the response and NOT cached, so a later request retries
// the optimal solver.
func TestFallbackFlaggedAndNotCached(t *testing.T) {
	ts, srv, _ := newTestServer(t, Options{
		// A memo ceiling of 1 forces guard.ErrBudgetExceeded on the
		// first DP cell — deterministic degradation without timing.
		Limits: guard.Limits{MaxMemoEntries: 1},
	})
	req := dwtRequest(16 * 16)
	req.IncludeMoves = false

	for i := 0; i < 2; i++ {
		resp, body := postJSON(t, ts.URL+"/v1/schedule", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("call %d: status %d: %s", i, resp.StatusCode, body)
		}
		var out wire.ScheduleResult
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		if out.Source != "fallback" || out.FallbackReason == "" {
			t.Fatalf("call %d: source=%q reason=%q, want flagged fallback", i, out.Source, out.FallbackReason)
		}
		if out.Cache != "miss" {
			t.Fatalf("call %d: cache=%q — degraded results must not be cached", i, out.Cache)
		}
	}
	if n := srv.CacheStats().Entries; n != 0 {
		t.Fatalf("cache holds %d entries after fallback-only traffic", n)
	}
	var st Stats
	getJSON(t, ts.URL+"/statsz", &st)
	if st.Fallbacks != 2 {
		t.Fatalf("statsz fallbacks=%d, want 2", st.Fallbacks)
	}
}

// TestLowerBoundEndpoint: GET /v1/lowerbound answers without solving,
// and rejects malformed queries with 400s.
func TestLowerBoundEndpoint(t *testing.T) {
	ts, _, solves := newTestServer(t, Options{})
	var out wire.LowerBoundResult
	resp := getJSON(t, ts.URL+"/v1/lowerbound?family=dwt&n=32&d=4", &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if out.LowerBoundBits <= 0 || out.MinExistenceBits <= 0 || out.Nodes == 0 {
		t.Fatalf("degenerate bounds: %+v", out)
	}
	if solves.Load() != 0 {
		t.Fatal("lowerbound must not solve")
	}
	for _, q := range []string{
		"family=dwt&n=33&d=4", "family=quux", "family=cdag",
		"family=mvm&m=0&n=8", "family=dwt&n=abc&d=4",
	} {
		resp := getJSON(t, ts.URL+"/v1/lowerbound?"+q, nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("query %q: status %d, want 400", q, resp.StatusCode)
		}
	}
}

// TestHealthz: liveness plus method checks on the POST endpoints.
func TestHealthzAndMethods(t *testing.T) {
	ts, _, _ := newTestServer(t, Options{})
	var h map[string]any
	if resp := getJSON(t, ts.URL+"/healthz", &h); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	if h["status"] != "ok" {
		t.Fatalf("healthz body %v", h)
	}
	if resp := getJSON(t, ts.URL+"/v1/schedule", nil); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET schedule: status %d, want 405", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/v1/schedule/batch", nil); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET batch: status %d, want 405", resp.StatusCode)
	}
}

// TestCacheEviction: a tiny cache evicts and /statsz reports it.
func TestCacheEvictionVisibleInStats(t *testing.T) {
	ts, _, _ := newTestServer(t, Options{CacheShards: 1, CachePerShard: 1})
	budgets := []int64{16 * 16, 17 * 16, 18 * 16}
	for _, b := range budgets {
		if resp, body := postJSON(t, ts.URL+"/v1/schedule", dwtRequest(b)); resp.StatusCode != 200 {
			t.Fatalf("budget %d: %s", b, body)
		}
	}
	var st Stats
	getJSON(t, ts.URL+"/statsz", &st)
	if st.Cache.Evictions < 2 {
		t.Fatalf("evictions = %d, want ≥ 2 with capacity 1", st.Cache.Evictions)
	}
	if st.Cache.Entries != 1 {
		t.Fatalf("entries = %d, want 1", st.Cache.Entries)
	}
	if st.Cache.Capacity != 1 {
		t.Fatalf("capacity = %d, want 1", st.Cache.Capacity)
	}
}
