package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"wrbpg/internal/cluster"
	"wrbpg/internal/serve/wire"
	"wrbpg/internal/solve"
)

// swapHandler lets a fleet allocate listeners (and thus member URLs)
// before the servers that need those URLs exist.
type swapHandler struct {
	mu sync.RWMutex
	h  http.Handler
}

func (sh *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	sh.mu.RLock()
	h := sh.h
	sh.mu.RUnlock()
	if h == nil {
		http.Error(w, "not ready", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

func (sh *swapHandler) set(h http.Handler) {
	sh.mu.Lock()
	sh.h = h
	sh.mu.Unlock()
}

// testFleet is an n-replica in-process cluster over httptest listeners.
type testFleet struct {
	urls     []string
	ts       []*httptest.Server
	servers  []*Server
	clusters []*cluster.Cluster
	solves   *atomic.Int64 // fleet-wide solver invocations (global hook)
}

// newTestFleet builds n replicas whose clusters all agree on the
// member set. The health loop is not started; tests drive ProbeOnce
// and ReportFillError deterministically.
func newTestFleet(t *testing.T, n int, opts Options) *testFleet {
	t.Helper()
	var solves atomic.Int64
	restore := solve.SetHook(func(name string, out solve.Outcome, err error) { solves.Add(1) })
	t.Cleanup(restore)

	f := &testFleet{solves: &solves}
	swaps := make([]*swapHandler, n)
	for i := 0; i < n; i++ {
		swaps[i] = &swapHandler{}
		ts := httptest.NewServer(swaps[i])
		t.Cleanup(ts.Close)
		f.ts = append(f.ts, ts)
		f.urls = append(f.urls, ts.URL)
	}
	for i := 0; i < n; i++ {
		var peers []string
		for j, u := range f.urls {
			if j != i {
				peers = append(peers, u)
			}
		}
		c, err := cluster.New(cluster.Config{Self: f.urls[i], Peers: peers, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		o := opts
		o.Cluster = c
		s := New(o)
		swaps[i].set(s.Handler())
		f.servers = append(f.servers, s)
		f.clusters = append(f.clusters, c)
	}
	return f
}

// ownerOf returns the replica index owning req's schedule key (every
// replica agrees, so replica 0's ring is authoritative).
func (f *testFleet) ownerOf(t *testing.T, req wire.ScheduleRequest) int {
	t.Helper()
	inst, err := req.Instance()
	if err != nil {
		t.Fatal(err)
	}
	owner, _ := f.clusters[0].Route(inst.Key(req.BudgetBits))
	for i, u := range f.urls {
		if u == owner {
			return i
		}
	}
	t.Fatalf("owner %q is not a fleet member", owner)
	return -1
}

// reqOwnedBy scans budgets until it finds a valid request whose key the
// ring assigns to the wanted member URL (by index into urls; -1 means
// "not replica 0").
func (f *testFleet) reqOwnedBy(t *testing.T, want func(owner string) bool) wire.ScheduleRequest {
	t.Helper()
	for b := int64(16 * 16); b < 16*16+512; b++ {
		req := dwtRequest(b)
		inst, err := req.Instance()
		if err != nil {
			t.Fatal(err)
		}
		owner, _ := f.clusters[0].Route(inst.Key(b))
		if want(owner) {
			return req
		}
	}
	t.Fatal("no budget in range produced a key with the wanted owner")
	return wire.ScheduleRequest{}
}

// TestClusterPeerFillOwnerSolvesOnce is the tentpole acceptance test:
// a miss on a non-owner replica is filled by the ring owner, the owner
// solves exactly once fleet-wide, and the filled result joins the
// forwarder's local cache so the next hit is local.
func TestClusterPeerFillOwnerSolvesOnce(t *testing.T) {
	f := newTestFleet(t, 3, Options{})
	req := dwtRequest(16 * 16)
	owner := f.ownerOf(t, req)
	fwd := (owner + 1) % 3

	resp, body := postJSON(t, f.urls[fwd]+"/v1/schedule", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var res wire.ScheduleResult
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.Source != "optimal" {
		t.Fatalf("source=%q, want optimal via peer fill", res.Source)
	}
	if len(res.Schedule) == 0 {
		t.Fatal("moves requested but absent from filled result")
	}
	if got := f.solves.Load(); got != 1 {
		t.Fatalf("fleet solved %d times, want exactly 1 (owner only)", got)
	}
	if got := f.servers[owner].Stats().Solves; got != 1 {
		t.Fatalf("owner solves=%d, want 1", got)
	}
	if got := f.servers[fwd].Stats().Solves; got != 0 {
		t.Fatalf("forwarder solves=%d, want 0 (the fill must not cost a local solve)", got)
	}
	fst := f.servers[fwd].Stats()
	if fst.PeerFill["filled"] != 1 {
		t.Fatalf("forwarder peer_fill=%v, want filled=1", fst.PeerFill)
	}
	if ost := f.servers[owner].Stats(); ost.PeerRequests != 1 {
		t.Fatalf("owner peer_requests=%d, want 1", ost.PeerRequests)
	}

	// The filled result was cached locally: a repeat is a local hit and
	// nobody solves again.
	resp, body = postJSON(t, f.urls[fwd]+"/v1/schedule", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.Cache != "hit" {
		t.Fatalf("warm cache=%q, want hit (fill should have been cached)", res.Cache)
	}
	// The owner serves its own traffic for the key from its cache too.
	resp, body = postJSON(t, f.urls[owner]+"/v1/schedule", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("owner status %d: %s", resp.StatusCode, body)
	}
	if got := f.solves.Load(); got != 1 {
		t.Fatalf("fleet solved %d times after warm traffic, want still 1", got)
	}

	// The readiness body carries the fleet health section in cluster
	// mode.
	var ready struct {
		Peers *cluster.HealthReport `json:"peers"`
	}
	getJSON(t, f.urls[fwd]+"/readyz", &ready)
	if ready.Peers == nil || ready.Peers.Total != 3 || ready.Peers.Healthy != 3 {
		t.Fatalf("readyz peers=%+v, want 3/3 healthy", ready.Peers)
	}
}

// TestClusterHopGuard: the peer endpoint rejects requests without the
// hop header, and a hop-marked request on the public endpoint is
// served locally — never forwarded again — even when the ring says
// another replica owns the key.
func TestClusterHopGuard(t *testing.T) {
	f := newTestFleet(t, 2, Options{})
	req := f.reqOwnedBy(t, func(owner string) bool { return owner != f.urls[0] })

	// Missing hop header on the peer endpoint: 400.
	resp, body := postJSON(t, f.urls[0]+cluster.PeerPath, wire.PeerScheduleRequest{Req: req})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("peer endpoint without hop header: status %d: %s", resp.StatusCode, body)
	}

	// Hop-marked request on the public endpoint of a non-owner: solved
	// locally, no forward.
	b, _ := json.Marshal(req)
	hreq, err := http.NewRequest(http.MethodPost, f.urls[0]+"/v1/schedule", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set(cluster.HopHeader, "1")
	hresp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("hop-marked schedule: status %d", hresp.StatusCode)
	}
	st := f.servers[0].Stats()
	if st.Solves != 1 {
		t.Fatalf("non-owner solves=%d, want 1 (hop-marked request must be served locally)", st.Solves)
	}
	for outcome, n := range st.PeerFill {
		if n != 0 {
			t.Fatalf("hop-marked request triggered a peer fill (%s=%d)", outcome, n)
		}
	}
	if other := f.servers[1].Stats(); other.PeerRequests != 0 || other.Solves != 0 {
		t.Fatalf("owner saw traffic (peer_requests=%d solves=%d); the hop guard failed", other.PeerRequests, other.Solves)
	}
}

// TestClusterPeerDownFallsBackLocal: with the owner replica dead, the
// forwarder's fill fails, the request is solved locally (availability
// beats dedup), and after FailThreshold fill errors the dead peer is
// ejected so later misses skip the doomed hop entirely.
func TestClusterPeerDownFallsBackLocal(t *testing.T) {
	f := newTestFleet(t, 2, Options{})
	dead := f.urls[1]
	f.ts[1].Close()

	// Three distinct dead-owned keys: two to drive fill errors up to
	// the ejection threshold, one to prove post-ejection misses skip
	// the hop.
	var reqs []wire.ScheduleRequest
	for b := int64(16 * 16); len(reqs) < 3 && b < 16*16+512; b++ {
		req := dwtRequest(b)
		inst, err := req.Instance()
		if err != nil {
			t.Fatal(err)
		}
		if owner, _ := f.clusters[0].Route(inst.Key(b)); owner == dead {
			reqs = append(reqs, req)
		}
	}
	if len(reqs) < 3 {
		t.Fatal("not enough dead-owned keys in budget range")
	}

	for i := 0; i < 2; i++ {
		resp, body := postJSON(t, f.urls[0]+"/v1/schedule", reqs[i])
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("req %d with dead owner: status %d: %s", i, resp.StatusCode, body)
		}
		var res wire.ScheduleResult
		if err := json.Unmarshal(body, &res); err != nil {
			t.Fatal(err)
		}
		if res.Source != "optimal" {
			t.Fatalf("req %d: source=%q, want optimal local fallback", i, res.Source)
		}
	}
	st := f.servers[0].Stats()
	if st.PeerFill["error"] != 2 {
		t.Fatalf("peer_fill=%v, want error=2", st.PeerFill)
	}
	if st.Solves != 2 {
		t.Fatalf("solves=%d, want 2 local fallbacks", st.Solves)
	}
	// Threshold reached: the dead peer is off the ring, the next
	// dead-owned key routes locally with no fill attempt.
	if f.clusters[0].Ejections() != 1 {
		t.Fatalf("ejections=%d, want 1 after two fill errors", f.clusters[0].Ejections())
	}
	resp, _ := postJSON(t, f.urls[0]+"/v1/schedule", reqs[2])
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-ejection request: status %d", resp.StatusCode)
	}
	if st = f.servers[0].Stats(); st.PeerFill["error"] != 2 {
		t.Fatalf("peer_fill=%v after ejection, want error still 2 (no fill attempted)", st.PeerFill)
	}
}

// TestClusterShedPropagation: an owner answering 429 makes the
// forwarder solve locally while it has capacity, and propagate the 429
// (with a clamped Retry-After) once its own queue is saturated.
func TestClusterShedPropagation(t *testing.T) {
	// Fake owner: always sheds peer fills, looks healthy to probes.
	fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == cluster.PeerPath {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"status":429,"error":"busy","retry_after_s":300}`)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer fake.Close()

	c, err := cluster.New(cluster.Config{Self: "http://self.invalid", Peers: []string{fake.URL}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := New(Options{MaxInflight: 1, MaxQueue: -1, Cluster: c})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ownedByFake := func(b int64) bool {
		req := dwtRequest(b)
		inst, err := req.Instance()
		if err != nil {
			t.Fatal(err)
		}
		owner, local := c.Route(inst.Key(b))
		return !local && owner == fake.URL
	}
	var budgets []int64
	for b := int64(16 * 16); len(budgets) < 2 && b < 16*16+512; b++ {
		if ownedByFake(b) {
			budgets = append(budgets, b)
		}
	}
	if len(budgets) < 2 {
		t.Fatal("no fake-owned budgets in range")
	}

	// Capacity available: the owner's shed is absorbed locally.
	resp, body := postJSON(t, ts.URL+"/v1/schedule", dwtRequest(budgets[0]))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("unsaturated: status %d: %s", resp.StatusCode, body)
	}
	st := s.Stats()
	if st.PeerFill["shed"] != 1 || st.PeerShedPropagated != 0 {
		t.Fatalf("unsaturated: peer_fill=%v propagated=%d, want shed=1 propagated=0", st.PeerFill, st.PeerShedPropagated)
	}

	// Saturated: the owner's 429 is surfaced, Retry-After clamped to
	// the [1,60]s contract.
	release := pinSlots(t, s)
	defer release()
	resp, body = postJSON(t, ts.URL+"/v1/schedule", dwtRequest(budgets[1]))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated: status %d: %s, want 429 propagated", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "60" {
		t.Fatalf("Retry-After=%q, want owner's 300s clamped to 60", ra)
	}
	var we wire.Error
	if err := json.Unmarshal(body, &we); err != nil {
		t.Fatal(err)
	}
	if we.Reason != "shed" {
		t.Fatalf("reason=%q, want shed", we.Reason)
	}
	st = s.Stats()
	if st.PeerShedPropagated != 1 {
		t.Fatalf("propagated=%d, want 1", st.PeerShedPropagated)
	}
}

// TestClusterFillDuringEjectRace hammers the peer-fill path while the
// ring membership churns (eject via fill-error reports, re-admit via
// probes), under -race. Every response must still be a success: churn
// may cost dedup, never availability.
func TestClusterFillDuringEjectRace(t *testing.T) {
	f := newTestFleet(t, 2, Options{})
	stop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			f.clusters[0].ReportFillError(f.urls[1])
			f.clusters[0].ReportFillError(f.urls[1])
			f.clusters[0].ProbeOnce(context.Background())
		}
	}()

	const workers, perWorker = 8, 20
	var wg sync.WaitGroup
	errs := make(chan error, workers*perWorker)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				req := dwtRequest(int64(16*16 + w*perWorker + i))
				b, _ := json.Marshal(req)
				resp, err := http.Post(f.urls[0]+"/v1/schedule", "application/json", bytes.NewReader(b))
				if err != nil {
					errs <- err
					continue
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("budget %d: status %d", 16*16+w*perWorker+i, resp.StatusCode)
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	churn.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
