// The incremental re-solve serving path: POST /v1/schedule/patch
// applies weight deltas to a warm base session and answers a budget
// list against the surviving memo cells, instead of building and
// solving the patched instance cold. The base session comes from the
// same LRU pool the sweep path keeps, keyed by the instance's
// BaseShapeKey (deltas stripped), so every patched variant of one base
// lands on — and re-patches — the same pooled session. Patched results
// requested through /v1/schedule carry their deltas in the cache key,
// so the schedule cache never conflates a patched instance with its
// base.
//
// The steady-state path (resident session, warmed buffers) performs
// zero allocations per request body decoded: delta canonicalization
// reuses the workspace's retained slices and the patch itself diffs in
// the session's own scratch buffers (guarded by internal/bench's
// alloc-regression test over PatchCosts).

package serve

import (
	"context"
	"errors"
	"net/http"
	"time"

	"wrbpg/internal/cdag"
	"wrbpg/internal/guard"
	"wrbpg/internal/obs"
	"wrbpg/internal/schedcache"
	"wrbpg/internal/serve/wire"
	"wrbpg/internal/solve"
)

// PatchError marks a rejected delta list (unknown node, family weight
// constraint): the session reverted to its pre-patch state and stays
// pooled, and the request — not the server — is at fault, so the
// handler answers 400, not 500.
type PatchError struct{ Err error }

func (e *PatchError) Error() string { return e.Err.Error() }
func (e *PatchError) Unwrap() error { return e.Err }

// PatchOutcome reports the non-item results of one PatchCosts call:
// what the incremental engine did and the patched instance's bounds,
// captured under the session lock so they describe exactly the state
// the budget answers came from.
type PatchOutcome struct {
	// Stats is the incremental engine's work report (nodes written,
	// memo cells invalidated and reused).
	Stats solve.PatchStats
	// LowerBound and MinExistence are the patched graph's Proposition
	// 2.4 / 2.3 bounds.
	LowerBound   cdag.Weight
	MinExistence cdag.Weight
	// Label is the base instance's human-readable name.
	Label string
	// Session is the pool disposition (hit/miss/shared) of the base
	// session lookup.
	Session schedcache.State
}

// handlePatch serves POST /v1/schedule/patch.
func (s *Server) handlePatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeErr(w, wire.Errorf(http.StatusMethodNotAllowed, "POST required"))
		return
	}
	s.m.reqPatch.Inc()
	var req wire.PatchRequest
	if err := decodeStrict(w, r, s.opts.MaxBodyBytes, &req); err != nil {
		s.writeErr(w, asWireErr(err))
		return
	}
	// The workspace must outlive the response encoder — the response
	// aliases ws.items — so the handler owns its lifetime.
	ws := s.wsPool.Get().(*sweepWorkspace)
	defer s.wsPool.Put(ws)
	res, werr := s.patch(r.Context(), &req, ws)
	if werr != nil {
		s.writeErr(w, werr)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// patch validates the request, resolves the base instance (resident
// session by base_key, or inline), derives the deadline, acquires a
// solver slot and answers every budget through PatchCosts.
func (s *Server) patch(ctx context.Context, req *wire.PatchRequest, ws *sweepWorkspace) (*wire.PatchResponse, *wire.Error) {
	start := time.Now()
	if len(req.Deltas) == 0 {
		return nil, wire.Errorf(http.StatusBadRequest,
			"deltas must not be empty (a delta-free budget list is a sweep: POST /v1/schedule/sweep)")
	}
	if len(req.Deltas) > s.opts.MaxPatchDeltas {
		return nil, wire.Errorf(http.StatusBadRequest,
			"patch of %d deltas exceeds limit %d", len(req.Deltas), s.opts.MaxPatchDeltas)
	}
	if len(req.BudgetsBits) == 0 {
		return nil, wire.Errorf(http.StatusBadRequest, "budgets_bits must not be empty")
	}
	if len(req.BudgetsBits) > s.opts.MaxSweepBudgets {
		return nil, wire.Errorf(http.StatusBadRequest,
			"patch of %d budgets exceeds limit %d", len(req.BudgetsBits), s.opts.MaxSweepBudgets)
	}
	budgets := ws.budgets[:0]
	for i, b := range req.BudgetsBits {
		if b < 1 {
			ws.budgets = budgets
			return nil, wire.Errorf(http.StatusBadRequest,
				"budgets_bits[%d] must be positive, got %d", i, b)
		}
		budgets = append(budgets, cdag.Weight(b))
	}
	ws.budgets = budgets

	// Resolve the base instance: a resident pooled session named by
	// base_key, or the inline family fields (which also warm the pool
	// for subsequent base_key calls).
	var inst solve.Instance
	var baseKey string
	switch {
	case req.BaseKey != "" && req.Family != "":
		return nil, wire.Errorf(http.StatusBadRequest,
			"base_key and an inline base instance are mutually exclusive")
	case req.BaseKey != "":
		ent, ok := s.sessions.Get(req.BaseKey)
		if !ok {
			return nil, wire.Errorf(http.StatusNotFound,
				"base session %q is not resident (pool keeps %d sessions, LRU-evicted); resend with the inline base instance",
				req.BaseKey, s.opts.SweepSessions)
		}
		inst = ent.inst
		baseKey = req.BaseKey
	default:
		var err error
		if inst, err = req.BaseInstance(); err != nil {
			return nil, wire.Errorf(http.StatusBadRequest, "%v", err)
		}
		baseKey = inst.BaseShapeKey()
	}
	ds, err := wire.CanonicalDeltas(req.Deltas)
	if err != nil {
		return nil, wire.Errorf(http.StatusBadRequest, "%v", err)
	}
	inst.Deltas = ds
	if err := inst.Validate(); err != nil {
		return nil, wire.Errorf(http.StatusBadRequest, "%v", err)
	}

	// One deadline covers the patch and every budget answered after it,
	// carried by the context like the sweep path.
	want := s.opts.DefaultTimeout
	if req.TimeoutMS > 0 {
		want = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	pctx := ctx
	if d := guard.ClampDeadline(ctx, want, s.opts.MaxTimeout); d > 0 {
		var cancel context.CancelFunc
		pctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}

	// Admission: a patch re-solve is solver work, one slot like any
	// cold solve. The queue wait is bounded by the remaining request
	// deadline (pctx already carries it); a shed patch is a structured
	// 429 — the incremental engine has no cheap degraded tier.
	tk, shed := s.adm.Acquire(ctx, guard.ClampDeadline(pctx, 0, s.opts.MaxTimeout))
	if shed != nil {
		s.m.shed(shed.mode)
		if shed.mode == shedCanceled {
			return nil, asWireErr(guard.Wrap(ctx.Err()))
		}
		return nil, shedErr(shed)
	}
	defer tk.Release()

	s.m.inflight.Add(1)
	// The counts sink rides the patch context, like the sweep path.
	cs := &guard.CountsSink{}
	solveStart := time.Now()
	wctx, wsp := obs.StartSpan(guard.WithSink(pctx, cs), "patch.solve")
	pts, out, err := s.PatchCosts(wctx, &inst, baseKey, budgets, ws.pts[:0])
	wsp.SetAttr("session", out.Session.String())
	wsp.End()
	solveWall := time.Since(solveStart)
	s.m.inflight.Add(-1)
	ws.pts = pts
	if err != nil {
		// An invalid patch (unknown node, family constraint) is the
		// caller's fault; session build failures and whole-request
		// aborts keep their server-side mapping.
		var perr *PatchError
		if errors.As(err, &perr) {
			return nil, wire.Errorf(http.StatusBadRequest, "%v", perr.Err)
		}
		return nil, asWireErr(err)
	}

	items := ws.items[:0]
	succeeded, failed := 0, 0
	for _, p := range pts {
		it := wire.SweepItem{BudgetBits: int64(p.Budget)}
		switch {
		case p.Err != nil:
			it.Error = asSweepItemErr(p.Err)
			s.m.fallbackVec.With(it.Error.Reason).Inc()
			failed++
		case p.Feasible:
			it.CostBits = int64(p.Cost)
			it.Feasible = true
			succeeded++
		default:
			// Infeasible is a legitimate answer, not a failure.
			succeeded++
		}
		items = append(items, it)
	}
	ws.items = items
	s.m.patchBudgets.Add(uint64(len(budgets)))
	s.m.patchDeltas.Add(uint64(len(ds)))
	s.m.patchChanged.Add(uint64(out.Stats.Changed))
	if out.Stats.Changed == 0 {
		s.m.patchNoops.Inc()
	}

	// The incremental-engine work report is authoritative for the cost
	// block's cell counters (the sink only sees what a checker flushed).
	cost := costMeta(wire.TierSession, tk.waited, solveWall, cs)
	cost.CellsInvalidated = out.Stats.Invalidated
	cost.CellsReused = out.Stats.Reused
	resp := &wire.PatchResponse{
		Workload:         out.Label,
		BaseKey:          baseKey,
		PatchKey:         inst.ShapeKey(),
		LowerBoundBits:   int64(out.LowerBound),
		MinExistenceBits: int64(out.MinExistence),
		Items:            items,
		Succeeded:        succeeded,
		Failed:           failed,
		Session:          out.Session.String(),
		DeltasApplied:    len(ds),
		ChangedNodes:     out.Stats.Changed,
		CellsInvalidated: out.Stats.Invalidated,
		CellsReused:      out.Stats.Reused,
		ElapsedUS:        wire.Elapsed(start),
		Cost:             cost,
	}
	noteCost(ctx, resp.Cost)
	return resp, nil
}

// PatchCosts is the allocation-free core of the patch path (the bench
// harness drives it directly): look up or build the warm base session
// for baseKey — the instance's BaseShapeKey, computed by the caller —
// move it to the instance's delta state with dependency-tracked
// invalidation, and answer every budget against the surviving memo
// cells, appending to out. A pool hit plus a small diff plus warm
// queries performs zero allocations in steady state.
//
// The returned error is an invalid patch (the session reverts to its
// pre-patch state and stays pooled), a session build failure, or
// guard.ErrCanceled for a whole-request cancellation; per-budget
// aborts are reported on their CostPoint.
func (s *Server) PatchCosts(ctx context.Context, inst *solve.Instance, baseKey string, budgets []cdag.Weight, out []solve.CostPoint) ([]solve.CostPoint, PatchOutcome, error) {
	ent, state, err := s.acquireSession(ctx, inst, baseKey)
	po := PatchOutcome{Session: state}
	if err != nil {
		return out, po, err
	}
	lim := s.opts.Limits
	lim.Deadline = 0
	ent.mu.Lock()
	defer ent.mu.Unlock()
	st, err := ent.se.PatchTo(inst.Deltas)
	if err != nil {
		return out, po, &PatchError{Err: err}
	}
	po.Stats = st
	po.Label = ent.se.Label()
	po.LowerBound = ent.se.LowerBound()
	po.MinExistence = ent.se.MinExistence()
	pts, err := ent.se.SweepCosts(ctx, lim, budgets, out)
	return pts, po, err
}
