// End-to-end tests for the general-DAG anytime tier over the raw
// node/edge wire form: solves label source=anytime, move lists come
// back in the requester's own numbering (Simulate-valid against the
// graph exactly as submitted), isomorphic resubmissions hit one cache
// entry, and malformed specs fail as structured 400s naming the
// offending node or edge.

package serve

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"wrbpg/internal/core"
	"wrbpg/internal/serve/wire"
	"wrbpg/internal/solve"
)

// diamondSpec is a five-node diamond with asymmetric weights, nodes
// listed in a deliberately non-topological order.
func diamondSpec() *wire.GraphSpec {
	return &wire.GraphSpec{Nodes: []wire.GraphNode{
		{Name: "out", WeightBits: 24, Deps: []string{"mid1", "mid2"}},
		{Name: "in1", WeightBits: 8},
		{Name: "mid1", WeightBits: 16, Deps: []string{"in1", "in2"}},
		{Name: "mid2", WeightBits: 12, Deps: []string{"in1"}},
		{Name: "in2", WeightBits: 8},
	}}
}

// renamedDiamondSpec is the same dataflow with different names and a
// different node order — isomorphic, so it must share the cache entry.
func renamedDiamondSpec() *wire.GraphSpec {
	return &wire.GraphSpec{Nodes: []wire.GraphNode{
		{Name: "b", WeightBits: 8},
		{Name: "a", WeightBits: 8},
		{Name: "left", WeightBits: 16, Deps: []string{"a", "b"}},
		{Name: "right", WeightBits: 12, Deps: []string{"a"}},
		{Name: "root", WeightBits: 24, Deps: []string{"left", "right"}},
	}}
}

func postCDAG(t *testing.T, url string, spec *wire.GraphSpec, budget int64) (int, wire.ScheduleResult, []byte) {
	t.Helper()
	body := wire.ScheduleRequest{
		Family: solve.FamilyCDAG, CDAG: spec,
		BudgetBits: budget, IncludeMoves: true,
	}
	resp, raw := postJSON(t, url+"/v1/schedule", body)
	var out wire.ScheduleResult
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, out, raw
}

// TestScheduleCDAGSpecEndToEnd: a raw spec solves through the anytime
// tier and the returned move list is valid against the graph exactly
// as the requester numbered it — the canonical relabeling is invisible
// on the wire.
func TestScheduleCDAGSpecEndToEnd(t *testing.T) {
	ts, _, _ := newTestServer(t, Options{})
	spec := diamondSpec()
	reqGraph, err := spec.Graph()
	if err != nil {
		t.Fatal(err)
	}
	budget := int64(core.MinExistenceBudget(reqGraph)) * 2
	status, out, raw := postCDAG(t, ts.URL, spec, budget)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	if out.Source != "anytime" {
		t.Fatalf("source %q, want anytime", out.Source)
	}
	if out.Anytime == nil || !out.Anytime.Complete {
		t.Fatalf("five-node search should drain: %+v", out.Anytime)
	}
	if out.Anytime.SeedCostBits < out.CostBits {
		t.Fatalf("seed %d below final cost %d", out.Anytime.SeedCostBits, out.CostBits)
	}
	stats, err := core.Simulate(reqGraph, budget, out.Schedule)
	if err != nil {
		t.Fatalf("returned moves invalid in the requester's numbering: %v", err)
	}
	if int64(stats.Cost) != out.CostBits {
		t.Fatalf("simulated cost %d != reported %d", stats.Cost, out.CostBits)
	}
	if out.CostBits < out.LowerBoundBits {
		t.Fatalf("cost %d below lower bound %d", out.CostBits, out.LowerBoundBits)
	}
}

// TestScheduleCDAGSpecIsomorphicHit: a renamed, reordered submission
// of the same dataflow hits the first solve's cache entry, and its
// move list is valid against its *own* numbering.
func TestScheduleCDAGSpecIsomorphicHit(t *testing.T) {
	ts, _, solves := newTestServer(t, Options{})
	g1, err := diamondSpec().Graph()
	if err != nil {
		t.Fatal(err)
	}
	budget := int64(core.MinExistenceBudget(g1)) * 2
	if status, _, raw := postCDAG(t, ts.URL, diamondSpec(), budget); status != http.StatusOK {
		t.Fatalf("first solve: status %d: %s", status, raw)
	}
	after := solves.Load()
	status, out, raw := postCDAG(t, ts.URL, renamedDiamondSpec(), budget)
	if status != http.StatusOK {
		t.Fatalf("isomorphic solve: status %d: %s", status, raw)
	}
	if out.Cache != "hit" {
		t.Fatalf("isomorphic resubmission: cache=%q, want hit", out.Cache)
	}
	if solves.Load() != after {
		t.Fatal("isomorphic resubmission invoked the solver")
	}
	g2, err := renamedDiamondSpec().Graph()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.Simulate(g2, budget, out.Schedule); err != nil {
		t.Fatalf("cache-hit moves invalid in the second requester's numbering: %v", err)
	}
}

// TestScheduleCDAGSpecBadRequests: malformed specs are structured 400s
// naming the offending node or edge, and never reach the solver.
func TestScheduleCDAGSpecBadRequests(t *testing.T) {
	ts, _, solves := newTestServer(t, Options{})
	cases := []struct {
		name string
		body string
		want string
	}{
		{"cycle", `{"family":"cdag","budget_bits":64,"cdag":{"nodes":[
			{"name":"a","weight_bits":8,"deps":["b"]},
			{"name":"b","weight_bits":8,"deps":["a"]}]}}`, "cycle"},
		{"dangling edge", `{"family":"cdag","budget_bits":64,"cdag":{"nodes":[
			{"name":"a","weight_bits":8,"deps":["ghost"]}]}}`, `"ghost"`},
		{"non-positive weight", `{"family":"cdag","budget_bits":64,"cdag":{"nodes":[
			{"name":"heavy","weight_bits":0}]}}`, `"heavy"`},
		{"duplicate name", `{"family":"cdag","budget_bits":64,"cdag":{"nodes":[
			{"name":"a","weight_bits":8},{"name":"a","weight_bits":8}]}}`, `"a"`},
		{"both graph forms", `{"family":"cdag","budget_bits":64,
			"graph":{"nodes":[{"w":8}]},
			"cdag":{"nodes":[{"name":"a","weight_bits":8}]}}`, "exactly one"},
	}
	for _, tc := range cases {
		resp, raw := postJSON(t, ts.URL+"/v1/schedule", json.RawMessage(tc.body))
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", tc.name, resp.StatusCode, raw)
			continue
		}
		var e wire.Error
		if err := json.Unmarshal(raw, &e); err != nil || e.Status != http.StatusBadRequest {
			t.Errorf("%s: unstructured error body %s", tc.name, raw)
			continue
		}
		if !strings.Contains(e.Message, tc.want) {
			t.Errorf("%s: error %q does not name the offender %q", tc.name, e.Message, tc.want)
		}
	}
	if solves.Load() != 0 {
		t.Fatalf("malformed specs invoked the solver %d times", solves.Load())
	}
}

// TestLowerBoundCDAGBody: /v1/lowerbound accepts family:"cdag" raw
// graphs as a request body (POST, or GET with a body) and answers the
// Proposition 2.3/2.4 bounds without solving.
func TestLowerBoundCDAGBody(t *testing.T) {
	ts, _, solves := newTestServer(t, Options{})
	body := wire.ScheduleRequest{Family: solve.FamilyCDAG, CDAG: diamondSpec()}
	resp, raw := postJSON(t, ts.URL+"/v1/lowerbound", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var out wire.LowerBoundResult
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.LowerBoundBits <= 0 || out.MinExistenceBits <= 0 || out.Nodes != 5 {
		t.Fatalf("degenerate cdag bounds: %+v", out)
	}
	if solves.Load() != 0 {
		t.Fatal("lowerbound must not solve")
	}
	// Malformed spec through the same path: structured 400.
	bad := `{"family":"cdag","cdag":{"nodes":[{"name":"a","weight_bits":8,"deps":["ghost"]}]}}`
	resp, raw = postJSON(t, ts.URL+"/v1/lowerbound", json.RawMessage(bad))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed spec: status %d: %s", resp.StatusCode, raw)
	}
}
