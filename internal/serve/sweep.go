// The warm-sweep serving path: POST /v1/schedule/sweep answers a list
// of budgets for one instance from a persistent solver session instead
// of one cold solve per budget. Sessions live in an LRU pool keyed by
// the instance's budget-free ShapeKey (singleflighted builds, capped at
// Options.SweepSessions); the DP memos share sub-budget cells across
// queries, so a k-budget sweep costs roughly one cold solve and a
// repeat sweep is pure memo hits. Request-scoped buffers (decoded
// budgets, cost points, wire items) recycle through the server's
// sync.Pool, so steady-state sweep traffic performs zero allocations
// per warm query (guarded by internal/bench's alloc-regression test).

package serve

import (
	"context"
	"errors"
	"net/http"
	"sync"
	"time"

	"wrbpg/internal/cdag"
	"wrbpg/internal/guard"
	"wrbpg/internal/obs"
	"wrbpg/internal/schedcache"
	"wrbpg/internal/serve/wire"
	"wrbpg/internal/solve"
)

// sessionEntry pairs one warm solve.Session with the mutex serializing
// access to it: sessions are single-goroutine solvers, so concurrent
// sweeps and patches for the same shape queue on the entry rather than
// racing the memo tables. inst is the *base* instance (deltas
// stripped), kept so a patch request naming only a base_key can
// re-derive the instance without resending it.
type sessionEntry struct {
	mu   sync.Mutex
	inst solve.Instance
	se   *solve.Session
}

// sweepWorkspace is the per-request scratch recycled through the
// server's pool. Slices are reused via [:0], so the buffers stop
// growing once they have seen the largest sweep in flight.
type sweepWorkspace struct {
	budgets []cdag.Weight
	pts     []solve.CostPoint
	items   []wire.SweepItem
}

// handleSweep serves POST /v1/schedule/sweep.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeErr(w, wire.Errorf(http.StatusMethodNotAllowed, "POST required"))
		return
	}
	s.m.reqSweep.Inc()
	var req wire.SweepRequest
	if err := decodeStrict(w, r, s.opts.MaxBodyBytes, &req); err != nil {
		s.writeErr(w, asWireErr(err))
		return
	}
	// The workspace must outlive the response encoder — the response
	// aliases ws.items — so the handler owns its lifetime, not sweep.
	ws := s.wsPool.Get().(*sweepWorkspace)
	defer s.wsPool.Put(ws)
	res, werr := s.sweep(r.Context(), &req, ws)
	if werr != nil {
		s.writeErr(w, werr)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// sweep validates the request, derives the whole-sweep deadline,
// acquires a solver slot and answers every budget from the session
// pool.
func (s *Server) sweep(ctx context.Context, req *wire.SweepRequest, ws *sweepWorkspace) (*wire.SweepResponse, *wire.Error) {
	start := time.Now()
	if len(req.BudgetsBits) == 0 {
		return nil, wire.Errorf(http.StatusBadRequest, "budgets_bits must not be empty")
	}
	if len(req.BudgetsBits) > s.opts.MaxSweepBudgets {
		return nil, wire.Errorf(http.StatusBadRequest,
			"sweep of %d budgets exceeds limit %d", len(req.BudgetsBits), s.opts.MaxSweepBudgets)
	}
	budgets := ws.budgets[:0]
	for i, b := range req.BudgetsBits {
		if b < 1 {
			ws.budgets = budgets
			return nil, wire.Errorf(http.StatusBadRequest,
				"budgets_bits[%d] must be positive, got %d", i, b)
		}
		budgets = append(budgets, cdag.Weight(b))
	}
	ws.budgets = budgets
	inst, err := req.Instance()
	if err != nil {
		return nil, wire.Errorf(http.StatusBadRequest, "%v", err)
	}

	// One deadline covers the whole sweep, carried by the context so
	// the per-budget warm queries need no per-query timer (a timer per
	// query would allocate and defeat the zero-alloc steady state).
	want := s.opts.DefaultTimeout
	if req.TimeoutMS > 0 {
		want = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	sctx := ctx
	if d := guard.ClampDeadline(ctx, want, s.opts.MaxTimeout); d > 0 {
		var cancel context.CancelFunc
		sctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}

	// Admission: a sweep is solver work, one slot like any cold solve.
	// The queue wait is bounded by the remaining sweep deadline (sctx
	// already carries it, so queue time and solve time share one
	// budget); a shed sweep is a structured 429 — there is no cheap
	// whole-sweep baseline to degrade to.
	tk, shed := s.adm.Acquire(ctx, guard.ClampDeadline(sctx, 0, s.opts.MaxTimeout))
	if shed != nil {
		s.m.shed(shed.mode)
		if shed.mode == shedCanceled {
			return nil, asWireErr(guard.Wrap(ctx.Err()))
		}
		return nil, shedErr(shed)
	}
	defer tk.Release()

	s.m.inflight.Add(1)
	// The counts sink rides the sweep context: the warm session's guard
	// checker is Reset under it per budget query, so its TakeCounts
	// flush feeds this request's cost block.
	cs := &guard.CountsSink{}
	solveStart := time.Now()
	wctx, wsp := obs.StartSpan(guard.WithSink(sctx, cs), "sweep.solve")
	pts, state, err := s.SweepCosts(wctx, &inst, inst.ShapeKey(), budgets, ws.pts[:0])
	wsp.SetAttr("session", state.String())
	wsp.End()
	solveWall := time.Since(solveStart)
	s.m.inflight.Add(-1)
	ws.pts = pts
	if err != nil {
		// A session build failure or whole-sweep cancellation; per-budget
		// deadline aborts land on their items instead.
		return nil, asWireErr(err)
	}

	items := ws.items[:0]
	succeeded, failed := 0, 0
	for _, p := range pts {
		it := wire.SweepItem{BudgetBits: int64(p.Budget)}
		switch {
		case p.Err != nil:
			it.Error = asSweepItemErr(p.Err)
			s.m.fallbackVec.With(it.Error.Reason).Inc()
			failed++
		case p.Feasible:
			it.CostBits = int64(p.Cost)
			it.Feasible = true
			succeeded++
		default:
			// Infeasible is a legitimate answer, not a failure.
			succeeded++
		}
		items = append(items, it)
	}
	ws.items = items
	s.m.sweepBudgets.Add(uint64(len(budgets)))

	se := s.sessionMeta(&inst)
	resp := &wire.SweepResponse{
		Workload:         se.Label(),
		LowerBoundBits:   int64(se.LowerBound()),
		MinExistenceBits: int64(se.MinExistence()),
		Items:            items,
		Succeeded:        succeeded,
		Failed:           failed,
		Session:          state.String(),
		ElapsedUS:        wire.Elapsed(start),
		Cost:             costMeta(wire.TierSession, tk.waited, solveWall, cs),
	}
	noteCost(ctx, resp.Cost)
	return resp, nil
}

// SweepCosts is the allocation-free core of the sweep path (the bench
// harness drives it directly): look up or build the warm session for
// key — the instance's ShapeKey, computed by the caller — then answer
// every budget against it, appending to out. A pool hit plus warm
// queries performs zero allocations. The returned error is a session
// build failure or guard.ErrCanceled for a whole-sweep cancellation;
// per-budget aborts (deadline, resource limits, solver faults) are
// reported on their CostPoint.
func (s *Server) SweepCosts(ctx context.Context, inst *solve.Instance, key string, budgets []cdag.Weight, out []solve.CostPoint) ([]solve.CostPoint, schedcache.State, error) {
	ent, state, err := s.acquireSession(ctx, inst, key)
	if err != nil {
		return out, state, err
	}
	// Per-query resource ceilings come from the server options; the
	// sweep deadline is already carried by ctx, so Deadline stays zero
	// and the session's guard checker resets without starting a timer.
	lim := s.opts.Limits
	lim.Deadline = 0
	ent.mu.Lock()
	defer ent.mu.Unlock()
	// Move the pooled session to this instance's delta state before
	// querying: a plain sweep (nil deltas) reverts any weights a
	// previous patch left behind; an unpatched session is a no-op diff.
	if _, err := ent.se.PatchTo(inst.Deltas); err != nil {
		return out, state, err
	}
	pts, err := ent.se.SweepCosts(ctx, lim, budgets, out)
	return pts, state, err
}

// acquireSession looks up or builds (singleflighted) the warm session
// pool entry for key, counting the disposition into the session
// hit/miss metrics. The entry stores the *base* session — deltas are
// applied per request under the entry lock, never baked into the pool.
func (s *Server) acquireSession(ctx context.Context, inst *solve.Instance, key string) (*sessionEntry, schedcache.State, error) {
	_, asp := obs.StartSpan(ctx, "session.acquire")
	ent, state, err := s.sessions.Do(key, func() (*sessionEntry, bool, error) {
		base := *inst
		base.Deltas = nil
		se, err := solve.NewSession(base)
		if err != nil {
			return nil, false, err
		}
		return &sessionEntry{inst: base, se: se}, true, nil
	})
	asp.SetAttr("disposition", state.String())
	asp.End()
	if err != nil {
		return nil, state, err
	}
	if state == schedcache.Hit {
		s.m.sessionHits.Inc()
	} else {
		s.m.sessionMisses.Inc()
	}
	return ent, state, nil
}

// sessionMeta returns the session whose immutable metadata (label,
// bounds) stamps the response. The pooled entry is the common case; if
// it was evicted between the sweep and here (possible under heavy
// shape churn), a fresh session is built purely for its metadata.
func (s *Server) sessionMeta(inst *solve.Instance) *solve.Session {
	if ent, ok := s.sessions.Get(inst.ShapeKey()); ok {
		return ent.se
	}
	se, err := solve.NewSession(*inst)
	if err != nil {
		// The instance already validated and solved; metadata
		// construction cannot fail differently. Fall back to a label-only
		// view rather than panicking.
		return &solve.Session{}
	}
	return se
}

// asSweepItemErr maps a per-budget abort onto the structured item
// error: deadline → 504, resource budget → 422, cancellation → 499,
// anything else (including solver faults) → 500. Every item error
// carries the machine-readable reason classification alongside the
// human-readable message, so clients and dashboards need no string
// matching.
func asSweepItemErr(err error) *wire.Error {
	reason := solve.FallbackReason(err)
	switch {
	case errors.Is(err, guard.ErrDeadline):
		return wire.Errorf(http.StatusGatewayTimeout, "budget query deadline exceeded: %v", err).WithReason(reason)
	case errors.Is(err, guard.ErrBudgetExceeded):
		return wire.Errorf(http.StatusUnprocessableEntity, "resource budget exhausted: %v", err).WithReason(reason)
	case errors.Is(err, guard.ErrCanceled):
		return wire.Errorf(499, "client closed request").WithReason(reason)
	default:
		return wire.Errorf(http.StatusInternalServerError, "%v", err).WithReason(reason)
	}
}
