package serve

import (
	"testing"
	"time"

	"wrbpg/internal/obs"
)

// newTestBreaker builds a breaker with a controllable clock.
func newTestBreaker(window, minSamples int, threshold float64, cooldown time.Duration) (*breaker, *time.Time) {
	reg := obs.NewRegistry()
	b := newBreaker(window, minSamples, threshold, cooldown,
		reg.Gauge("test_breaker_state", "t"), reg.Counter("test_breaker_trips", "t"))
	clock := time.Now()
	b.now = func() time.Time { return clock }
	return b, &clock
}

func TestBreakerNilIsDisabled(t *testing.T) {
	var b *breaker
	if !b.Allow() {
		t.Fatal("nil breaker must allow everything")
	}
	b.Record(true) // must not panic
	b.Cancel()
	if got := b.State(); got != "disabled" {
		t.Fatalf("State = %q, want disabled", got)
	}
}

func TestBreakerTripsAtThreshold(t *testing.T) {
	b, _ := newTestBreaker(8, 4, 0.5, time.Minute)
	if got := b.State(); got != "closed" {
		t.Fatalf("initial state = %q, want closed", got)
	}
	// 3 fallbacks out of 3 — below minSamples, must stay closed.
	for i := 0; i < 3; i++ {
		if !b.Allow() {
			t.Fatal("closed breaker refused")
		}
		b.Record(true)
	}
	if got := b.State(); got != "closed" {
		t.Fatalf("state below minSamples = %q, want closed", got)
	}
	// Fourth fallback: 4/4 ≥ 0.5 with minSamples met — trips.
	b.Allow()
	b.Record(true)
	if got := b.State(); got != "open" {
		t.Fatalf("state after 4/4 fallbacks = %q, want open", got)
	}
	if b.Allow() {
		t.Fatal("open breaker allowed a request before cooldown")
	}
}

func TestBreakerStaysClosedUnderThreshold(t *testing.T) {
	b, _ := newTestBreaker(8, 4, 0.5, time.Minute)
	// Alternate success/fallback well past minSamples: rate stays at
	// 0.5 boundary only when falls ≥ threshold·n; 3 falls / 8 < 0.5.
	pattern := []bool{false, true, false, false, true, false, true, false}
	for _, fb := range pattern {
		b.Allow()
		b.Record(fb)
	}
	if got := b.State(); got != "closed" {
		t.Fatalf("state = %q, want closed at 3/8 fallback rate", got)
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	b, clock := newTestBreaker(4, 2, 0.5, 10*time.Second)
	for i := 0; i < 2; i++ {
		b.Allow()
		b.Record(true)
	}
	if got := b.State(); got != "open" {
		t.Fatalf("state = %q, want open", got)
	}
	// Still cooling down.
	*clock = clock.Add(5 * time.Second)
	if b.Allow() {
		t.Fatal("allowed during cooldown")
	}
	// Cooldown elapsed: exactly one probe passes.
	*clock = clock.Add(6 * time.Second)
	if !b.Allow() {
		t.Fatal("half-open breaker refused the probe")
	}
	if got := b.State(); got != "half_open" {
		t.Fatalf("state = %q, want half_open", got)
	}
	if b.Allow() {
		t.Fatal("second concurrent probe allowed in half-open")
	}
	// Probe succeeds → closed, window reset.
	b.Record(false)
	if got := b.State(); got != "closed" {
		t.Fatalf("state after good probe = %q, want closed", got)
	}
	if !b.Allow() {
		t.Fatal("closed breaker refused after recovery")
	}
	b.Record(false)
}

func TestBreakerHalfOpenProbeFailsReopens(t *testing.T) {
	b, clock := newTestBreaker(4, 2, 0.5, 10*time.Second)
	for i := 0; i < 2; i++ {
		b.Allow()
		b.Record(true)
	}
	*clock = clock.Add(11 * time.Second)
	if !b.Allow() {
		t.Fatal("probe refused")
	}
	b.Record(true) // probe fell back → reopen
	if got := b.State(); got != "open" {
		t.Fatalf("state after failed probe = %q, want open", got)
	}
	if b.Allow() {
		t.Fatal("allowed right after failed probe")
	}
	// The cooldown restarts from the failed probe.
	*clock = clock.Add(11 * time.Second)
	if !b.Allow() {
		t.Fatal("second probe refused after restarted cooldown")
	}
	b.Cancel() // canceled probe frees the half-open slot without a verdict
	if got := b.State(); got != "half_open" {
		t.Fatalf("state after canceled probe = %q, want half_open", got)
	}
	if !b.Allow() {
		t.Fatal("probe slot not freed by Cancel")
	}
	b.Record(false)
	if got := b.State(); got != "closed" {
		t.Fatalf("state = %q, want closed", got)
	}
}

func TestBreakerMinSamplesClampedToWindow(t *testing.T) {
	// minSamples > window would make the breaker untrippable (n never
	// exceeds the window size); the constructor clamps it.
	b, _ := newTestBreaker(4, 100, 0.5, time.Minute)
	for i := 0; i < 4; i++ {
		b.Allow()
		b.Record(true)
	}
	if got := b.State(); got != "open" {
		t.Fatalf("state = %q, want open (minSamples must clamp to window)", got)
	}
}
