// Per-request observability: the middleware that closes the loop
// between a finished API request and the fleet-wide instruments — the
// wrbpg_request_seconds latency histogram (with the trace ID attached
// as an exemplar when the request was traced), the SLO engine's
// sliding windows, and the structured request log line carrying the
// response's CostMeta. Only the solver-facing endpoints are tracked;
// meta endpoints (/metrics, /healthz, traces) and the internal peer
// path stay out so a forwarded request is not counted twice by the
// same fleet.

package serve

import (
	"context"
	"net/http"
	"sync/atomic"
	"time"

	"wrbpg/internal/obs"
	"wrbpg/internal/serve/wire"
)

// trackedPaths are the endpoints withRequestObs instruments. The peer
// path is deliberately absent: a peer fill is an internal hop of some
// forwarder's request, which that forwarder already counts once.
var trackedPaths = map[string]bool{
	"/v1/schedule":       true,
	"/v1/schedule/batch": true,
	"/v1/schedule/sweep": true,
	"/v1/schedule/patch": true,
	"/v1/lowerbound":     true,
}

// costKey carries the per-request cost pointer: handlers stash the
// response's CostMeta so the request log line can repeat it.
type costKey struct{}

// noteCost records c as the request's cost block. The carrier is an
// atomic pointer because batch items stamp concurrently; the log line
// shows whichever item finished last, which is fine for a fan-out
// whose authoritative per-item costs ride in the response body.
func noteCost(ctx context.Context, c *wire.CostMeta) {
	if c == nil {
		return
	}
	if p, ok := ctx.Value(costKey{}).(*atomic.Pointer[wire.CostMeta]); ok {
		p.Store(c)
	}
}

// statusWriter captures the response status for the middleware.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) status() int {
	if w.code == 0 {
		return http.StatusOK
	}
	return w.code
}

// withRequestObs wraps the endpoint mux with per-request accounting
// for the tracked API endpoints: latency into wrbpg_request_seconds
// (exemplared with the trace ID when traced), the SLO engine's
// good/bad tally (429s and 5xx are availability-bad), and the
// structured request log line.
func (s *Server) withRequestObs(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !trackedPaths[r.URL.Path] {
			h.ServeHTTP(w, r)
			return
		}
		start := time.Now()
		var cost atomic.Pointer[wire.CostMeta]
		ctx := context.WithValue(r.Context(), costKey{}, &cost)
		sw := &statusWriter{ResponseWriter: w}
		h.ServeHTTP(sw, r.WithContext(ctx))

		dur := time.Since(start)
		status := sw.status()
		s.slo.Record(dur, status == http.StatusTooManyRequests || status >= 500)
		var traceID string
		if tr := obs.TraceFrom(r.Context()); tr != nil {
			traceID = tr.ID()
		}
		s.m.reqSeconds.ObserveExemplar(dur.Seconds(), traceID)
		s.logRequest(r, status, dur, traceID, cost.Load())
	})
}

// logRequest emits the structured per-request line: transport facts,
// the trace correlation ID, and the response's cost accounting block —
// so an expensive request is attributable from the log stream alone.
func (s *Server) logRequest(r *http.Request, status int, dur time.Duration, traceID string, cost *wire.CostMeta) {
	if s.log == nil {
		return
	}
	attrs := []any{
		"method", r.Method,
		"path", r.URL.Path,
		"status", status,
		"duration_us", dur.Microseconds(),
	}
	if traceID != "" {
		attrs = append(attrs, "trace_id", traceID)
	}
	if cost != nil {
		attrs = append(attrs,
			"source_tier", cost.SourceTier,
			"queue_wait_us", cost.QueueWaitUS,
			"solve_wall_us", cost.SolveWallUS,
			"states_expanded", cost.StatesExpanded,
			"memo_hits", cost.MemoHits,
			"memo_misses", cost.MemoMisses,
			"peer_hops", cost.PeerHops,
		)
	}
	s.log.Info("request", attrs...)
}

// handleSLO serves GET /v1/slo: both objectives' burn rates and budget
// remainders across every sliding window.
func (s *Server) handleSLO(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeErr(w, wire.Errorf(http.StatusMethodNotAllowed, "GET required"))
		return
	}
	writeJSON(w, http.StatusOK, s.slo.Report())
}
