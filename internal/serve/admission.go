// Deadline-aware solver admission: the bounded queue in front of the
// solver slots that replaced the bare semaphore. Every slot-holder's
// hold time feeds a live histogram; a new arrival that finds all slots
// busy gets its queue wait *estimated* from that histogram before it
// is allowed to wait, so work that cannot finish inside its deadline
// is rejected up front ("don't queue doomed work") instead of
// occupying a queue position it can never use. The queue itself is
// bounded, waiting is capped by the request's own deadline budget, and
// a waiter whose client disconnects releases its position immediately.
//
// Shed decisions carry a Retry-After estimate derived from the queue
// drain time, so well-behaved clients back off for exactly as long as
// the backlog needs.

package serve

import (
	"context"
	"math"
	"sync/atomic"
	"time"

	"wrbpg/internal/obs"
)

// Shed modes: the label vocabulary of the wrbpg_shed_total metric.
const (
	// shedQueueFull: every slot busy and the queue at capacity.
	shedQueueFull = "queue_full"
	// shedDoomed: the estimated queue wait (or the actual wait) exceeds
	// the request's deadline budget — solving after it would only
	// produce a deadline-blown answer.
	shedDoomed = "doomed"
	// shedCanceled: the client disconnected while the request waited.
	shedCanceled = "canceled"
	// shedDegraded: the queue was saturated but the deadline still had
	// budget, so the request skipped the optimal tier and was answered
	// by the baseline scheduler (a 200 flagged fallback_cause="shed").
	shedDegraded = "degraded"
	// shedBreaker: the fallback-storm breaker was open, so the request
	// skipped the optimal tier without queueing at all.
	shedBreaker = "breaker"
)

// admission is the deadline-aware bounded queue guarding the solver
// slots. Acquire either admits (returning a ticket the caller must
// Release) or sheds with a structured decision; it never blocks past
// the caller's deadline budget or context.
type admission struct {
	// slots is the solver-slot semaphore (capacity MaxInflight).
	slots chan struct{}
	// maxQueue bounds the waiters; 0 means shed the moment every slot
	// is busy.
	maxQueue int
	// queued counts current waiters (CAS-bounded by maxQueue).
	queued atomic.Int64
	// depth mirrors queued into the registered gauge.
	depth *obs.Gauge
	// hold is the histogram of slot-hold times (µs) — the wait
	// estimator's input, fed by every Release.
	hold *obs.Histogram
	// enqueued, when non-nil, fires after a request joins the queue
	// (test hook for deterministic queued-cancellation coverage).
	enqueued func()
}

// ticket is an admitted request's slot. Release returns the slot and
// records the hold time; it must be called exactly once.
type ticket struct {
	a       *admission
	started time.Time
	// waited is how long the request queued before admission; the
	// caller subtracts it from the solve deadline so queue time and
	// solve time share one budget.
	waited time.Duration
}

// Release returns the slot and feeds the hold-time histogram.
func (t *ticket) Release() {
	t.a.hold.Observe(float64(time.Since(t.started).Microseconds()))
	<-t.a.slots
}

// shedDecision explains a rejected admission.
type shedDecision struct {
	// mode is the shed classification (shed* constants).
	mode string
	// estWait is the estimated queue drain time at decision time.
	estWait time.Duration
	// retryAfter is the Retry-After value in seconds: the drain
	// estimate rounded up, clamped to [1, 60].
	retryAfter int64
}

// Acquire admits the caller to a solver slot or sheds it. budget is
// the request's deadline budget (0 = unlimited): the estimated queue
// wait must fit inside it for the request to queue at all, and the
// actual wait is capped by it. On admission the returned ticket's
// waited field reports the queue time; on shed the decision says why.
func (a *admission) Acquire(ctx context.Context, budget time.Duration) (*ticket, *shedDecision) {
	// Fast path: a free slot admits immediately, no estimation.
	select {
	case a.slots <- struct{}{}:
		return &ticket{a: a, started: time.Now()}, nil
	default:
	}

	est := a.estimateWait(a.queued.Load())
	if budget > 0 && est > budget {
		return nil, a.shed(shedDoomed, est)
	}
	// Join the queue; the CAS loop keeps the bound exact under
	// concurrent arrivals.
	for {
		n := a.queued.Load()
		if n >= int64(a.maxQueue) {
			return nil, a.shed(shedQueueFull, est)
		}
		if a.queued.CompareAndSwap(n, n+1) {
			break
		}
	}
	a.depth.Add(1)
	defer func() {
		a.queued.Add(-1)
		a.depth.Add(-1)
	}()
	if a.enqueued != nil {
		a.enqueued()
	}

	// Cap the wait by the deadline budget: a request that spends its
	// whole budget queueing can only produce a blown answer.
	var expired <-chan time.Time
	if budget > 0 {
		timer := time.NewTimer(budget)
		defer timer.Stop()
		expired = timer.C
	}
	wait := time.Now()
	select {
	case a.slots <- struct{}{}:
		return &ticket{a: a, started: time.Now(), waited: time.Since(wait)}, nil
	case <-ctx.Done():
		return nil, a.shed(shedCanceled, est)
	case <-expired:
		return nil, a.shed(shedDoomed, est)
	}
}

// saturated reports whether every slot is busy and the queue is at
// capacity — the /readyz "overloaded" condition. An idle server with a
// zero-length queue is not overloaded, so the slot check comes first.
func (a *admission) saturated() bool {
	return len(a.slots) == cap(a.slots) && a.queued.Load() >= int64(a.maxQueue)
}

// estimateWait predicts how long an arrival finding queuedAhead
// waiters would queue: the median slot-hold time (from the live
// histogram of completed holds) times the number of admission waves in
// front of it — everyone already queued plus the set currently
// holding slots, divided across the slots. An empty histogram (cold
// start) estimates zero: admit and learn.
func (a *admission) estimateWait(queuedAhead int64) time.Duration {
	per := a.medianHoldUS()
	if per <= 0 {
		return 0
	}
	c := int64(cap(a.slots))
	if c < 1 {
		c = 1
	}
	waves := (queuedAhead + c) / c
	return time.Duration(waves*per) * time.Microsecond
}

// medianHoldUS extracts the median (bucket upper bound) from the
// hold-time histogram, 0 when it has no samples.
func (a *admission) medianHoldUS() int64 {
	n := a.hold.Count()
	if n == 0 {
		return 0
	}
	half := n / 2
	bounds := a.hold.Bounds()
	var cum uint64
	for i, b := range bounds {
		cum += a.hold.Bucket(i)
		if cum > half {
			return int64(b)
		}
	}
	// Median in the +Inf bucket: the mean is the best bound available.
	if mean := a.hold.Sum() / float64(n); mean > bounds[len(bounds)-1] {
		return int64(mean)
	}
	return int64(bounds[len(bounds)-1])
}

// shed builds the decision for mode with the Retry-After estimate.
func (a *admission) shed(mode string, est time.Duration) *shedDecision {
	ra := int64(math.Ceil(est.Seconds()))
	if ra < 1 {
		ra = 1
	}
	if ra > 60 {
		ra = 60
	}
	return &shedDecision{mode: mode, estWait: est, retryAfter: ra}
}
