// Cluster mode: the peer-fill read path and the internal peer
// endpoint. With Options.Cluster set, a local cache miss whose key the
// consistent-hash ring assigns to another replica is first offered to
// that owner (POST /v1/peer/schedule, bounded by a slice of the
// request deadline); only on peer error, timeout or shed does the
// local solver run. The owner's own cache singleflight dedups all
// forwarders plus its local traffic, so in the steady state each key
// is cold-solved at most once fleet-wide. See docs/CLUSTER.md.

package serve

import (
	"context"
	"errors"
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"wrbpg/internal/cluster"
	"wrbpg/internal/obs"
	"wrbpg/internal/serve/wire"
)

// Peer-fill outcomes: the label vocabulary of wrbpg_peer_fill_total.
const (
	// peerFilled: the owner answered an optimal result; it was cached
	// locally (hot-key replication) without any local solve.
	peerFilled = "filled"
	// peerDegraded: the owner answered 200 but with a fallback result
	// (its solver hit a deadline); used, never cached.
	peerDegraded = "degraded"
	// peerShed: the owner answered 429 — it is shedding. Cluster-aware
	// shedding decides: propagate when the local queue is saturated too,
	// otherwise solve locally.
	peerShed = "shed"
	// peerTimeout: the peer-fill deadline slice expired mid-fill.
	peerTimeout = "timeout"
	// peerError: transport failure or an unusable response; the owner is
	// reported to the health loop as suspect.
	peerError = "error"
)

// handlePeerSchedule serves POST /v1/peer/schedule, the internal
// replica-to-replica fill protocol. It is the regular schedule path
// with peer semantics: never forward again (loop guard), never degrade
// to a baseline answer on queue saturation — shed with 429 +
// Retry-After instead, because the forwarder still holds the request's
// real deadline budget and can solve locally or propagate the shed.
func (s *Server) handlePeerSchedule(w http.ResponseWriter, r *http.Request) {
	if s.cluster == nil {
		s.writeErr(w, wire.Errorf(http.StatusNotFound, "cluster mode disabled (no -peers)"))
		return
	}
	if r.Method != http.MethodPost {
		s.writeErr(w, wire.Errorf(http.StatusMethodNotAllowed, "POST required"))
		return
	}
	if r.Header.Get(cluster.HopHeader) == "" {
		s.writeErr(w, wire.Errorf(http.StatusBadRequest,
			"peer endpoint requires the %s header; external clients should use /v1/schedule", cluster.HopHeader))
		return
	}
	s.m.reqPeer.Inc()
	var preq wire.PeerScheduleRequest
	if err := decodeStrict(w, r, s.opts.MaxBodyBytes, &preq); err != nil {
		s.writeErr(w, asWireErr(err))
		return
	}
	// Resume the forwarder's trace when it propagated context: the
	// owner-side phases (cache, admission, solve) record under a
	// "peer.serve" root carrying the same trace ID, the completed
	// owner-side trace is retained locally for GET /v1/trace/{id}, and
	// the span subtree rides back in the response envelope so the
	// forwarder grafts it under its peer.fill span.
	ctx := r.Context()
	var (
		tr   *obs.Trace
		root *obs.Span
	)
	if id, pspan, ok := obs.SplitTraceParent(r.Header.Get(cluster.TraceParentHeader)); ok {
		tr = obs.ResumeTrace(id)
		ctx, root = obs.StartSpan(obs.WithTrace(ctx, tr), "peer.serve")
		root.SetAttr("origin", preq.Origin)
		root.SetAttr("parent_span", strconv.Itoa(pspan))
		w.Header().Set(TraceIDHeader, tr.ID())
	}
	res, werr := s.scheduleAs(ctx, &preq.Req, true, preq.Key)
	var tex *obs.TraceExport
	if tr != nil {
		root.End()
		s.traces.Put(tr)
		tex = tr.Tree()
	}
	if werr != nil {
		s.logPeerServe(tr, preq.Origin, werr.Status)
		s.writeErr(w, werr)
		return
	}
	s.logPeerServe(tr, preq.Origin, http.StatusOK)
	writeJSON(w, http.StatusOK, wire.PeerScheduleResponse{Result: res, Trace: tex})
}

// logPeerServe emits the owner-side structured line for one served
// peer fill, correlated by trace_id when the forwarder propagated one.
func (s *Server) logPeerServe(tr *obs.Trace, origin string, status int) {
	if s.log == nil {
		return
	}
	attrs := []any{"origin", origin, "status", status}
	if tr != nil {
		attrs = append(attrs, "trace_id", tr.ID())
	}
	s.log.Debug("peer fill served", attrs...)
}

// logPeerFill emits the forwarder-side structured line for one
// peer-fill attempt. The outcome vocabulary is exactly the
// wrbpg_peer_fill_total label set, so log lines and the counter join
// on the same strings; fills that failed over to the local solver
// (error/timeout) log at Warn, the rest at Debug.
func (s *Server) logPeerFill(ctx context.Context, owner, outcome string, err error) {
	if s.log == nil {
		return
	}
	attrs := []any{"owner", owner, "outcome", outcome}
	if tr := obs.TraceFrom(ctx); tr != nil {
		attrs = append(attrs, "trace_id", tr.ID())
	}
	if err != nil {
		attrs = append(attrs, "error", err.Error())
	}
	lvl := slog.LevelDebug
	if outcome == peerError || outcome == peerTimeout {
		lvl = slog.LevelWarn
	}
	s.log.Log(ctx, lvl, "peer fill", attrs...)
}

// peerFill offers the miss to the owning replica. handled=false means
// the caller should proceed with the local solve (peer error, timeout,
// or a shed the local queue can still absorb); handled=true carries
// the final verdict: a result (cacheable only when optimal) or the
// propagated 429.
func (s *Server) peerFill(ctx context.Context, owner, key string, req *wire.ScheduleRequest, deadline time.Duration) (res *wire.ScheduleResult, cacheable bool, err error, handled bool) {
	// The fill may spend the configured peer timeout, but never more
	// than half the request's remaining deadline: the local fallback
	// solve must keep a workable budget even when the owner is slow.
	timeout := s.cluster.PeerTimeout()
	if deadline > 0 && deadline/2 < timeout {
		timeout = deadline / 2
	}
	if timeout < time.Millisecond {
		return nil, false, nil, false // no budget for a network hop
	}

	pctx, sp := obs.StartSpan(ctx, "peer.fill")
	sp.SetAttr("owner", owner)
	defer sp.End()
	fctx, cancel := context.WithTimeout(pctx, timeout)
	defer cancel()

	fwd := *req
	// The filled entry joins the local cache, so it must carry the full
	// move list for future include_moves hits; the per-request stamping
	// strips moves the end client did not ask for.
	fwd.IncludeMoves = true
	fwd.TimeoutMS = timeout.Milliseconds()
	fill, sub, apiErr, ferr := s.cluster.Fill(fctx, owner, &wire.PeerScheduleRequest{
		Req: fwd, Key: key, Origin: s.cluster.Self(),
		// The trace parent is read off pctx (inside the peer.fill span),
		// so the owner's grafted subtree hangs under peer.fill.
		TraceParent: obs.TraceParent(pctx),
	})
	switch {
	case ferr != nil:
		outcome := peerError
		if errors.Is(ferr, context.DeadlineExceeded) {
			outcome = peerTimeout
		}
		sp.SetAttr("outcome", outcome)
		s.m.peerFill(outcome)
		s.logPeerFill(ctx, owner, outcome, ferr)
		s.cluster.ReportFillError(owner)
		return nil, false, nil, false // local solve

	case apiErr != nil:
		if apiErr.Status == http.StatusTooManyRequests {
			sp.SetAttr("outcome", peerShed)
			s.m.peerFill(peerShed)
			s.logPeerFill(ctx, owner, peerShed, nil)
			if s.adm.saturated() {
				// Cluster-aware shedding: the owner is shedding and the
				// local queue is saturated too — a local cold solve would
				// only be the degraded ladder under another name. Surface
				// the owner's 429 with its Retry-After clamped to the same
				// [1, 60]s contract local sheds honor.
				s.m.peerShedPropagated.Inc()
				ra := apiErr.RetryAfterS
				if ra < 1 {
					ra = 1
				}
				if ra > 60 {
					ra = 60
				}
				return nil, false, wire.Errorf(http.StatusTooManyRequests,
					"owner replica overloaded: %s", apiErr.Message).
					WithReason("shed").WithRetryAfter(ra), true
			}
			return nil, false, nil, false // local capacity absorbs the miss
		}
		// 4xx/5xx from the owner (key mismatch, internal failure): the
		// local solver is authoritative; the disagreement is visible in
		// the error outcome counter.
		sp.SetAttr("outcome", peerError)
		s.m.peerFill(peerError)
		s.logPeerFill(ctx, owner, peerError, apiErr)
		return nil, false, nil, false

	default:
		outcome := peerFilled
		cacheable = cacheableSource(fill)
		if !cacheable {
			outcome = peerDegraded
		}
		sp.SetAttr("outcome", outcome)
		s.m.peerFill(outcome)
		s.logPeerFill(ctx, owner, outcome, nil)
		// Stitch the owner's span subtree under peer.fill, so the
		// forwarder's GET /v1/trace/{id} shows the complete cross-replica
		// tree (transport gap included: the subtree is narrower than the
		// peer.fill span that contains it).
		sp.Graft(sub)
		// Scrub the owner's per-request stamping; the local request path
		// re-stamps cache disposition and key. ElapsedUS stays the
		// owner's solve time — the same semantics a local solve reports.
		fill.Cache, fill.CacheKey = "", ""
		// Cost accounting crosses the fleet with the fill: the owner's
		// meter (its solve or cache disposition) survives, re-tiered as a
		// peer answer one hop further from the client.
		if fill.Cost == nil {
			fill.Cost = &wire.CostMeta{}
		}
		fill.Cost.SourceTier = wire.TierPeer
		fill.Cost.PeerHops++
		return fill, cacheable, nil, true
	}
}
