// HTTP-level overload behavior: the degradation ladder end-to-end.
// These tests pin the solver slots white-box (same package) through
// the admission queue itself, so saturation is deterministic rather
// than raced through slow background requests.

package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"testing"
	"time"

	"wrbpg/internal/guard"
	"wrbpg/internal/serve/wire"
)

// pinSlots occupies every solver slot directly and returns an
// idempotent release func, making the server saturated for the
// duration of a test.
func pinSlots(t *testing.T, s *Server) func() {
	t.Helper()
	var tks []*ticket
	for i := 0; i < cap(s.adm.slots); i++ {
		tk, shed := s.adm.Acquire(context.Background(), 0)
		if shed != nil {
			t.Fatalf("pinning slot %d shed %q", i, shed.mode)
		}
		tks = append(tks, tk)
	}
	var once sync.Once
	return func() {
		once.Do(func() {
			for _, tk := range tks {
				tk.Release()
			}
		})
	}
}

// TestOverloadDegradesToShedBaseline: with every slot busy and no
// queue, a request with deadline budget left is served by the baseline
// tier — a 200 flagged fallback_cause="shed", not an error — and is
// not cached.
func TestOverloadDegradesToShedBaseline(t *testing.T) {
	ts, s, _ := newTestServer(t, Options{MaxInflight: 1, MaxQueue: -1})
	release := pinSlots(t, s)
	defer release()

	resp, body := postJSON(t, ts.URL+"/v1/schedule", dwtRequest(16*16))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var res wire.ScheduleResult
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.Source != "fallback" || res.FallbackCause != "shed" {
		t.Fatalf("source=%q cause=%q, want fallback/shed", res.Source, res.FallbackCause)
	}
	if len(res.Schedule) == 0 {
		t.Fatal("shed answer carried no schedule")
	}

	var st Stats
	getJSON(t, ts.URL+"/statsz", &st)
	if st.Shed[shedDegraded] != 1 {
		t.Fatalf("shed[degraded] = %d, want 1", st.Shed[shedDegraded])
	}

	// The shed answer was not cached: once capacity returns, the same
	// request gets the real solve.
	release()
	resp, body = postJSON(t, ts.URL+"/v1/schedule", dwtRequest(16*16))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("after release: status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.Source != "optimal" || res.Cache != "miss" {
		t.Fatalf("after release: source=%q cache=%q, want optimal/miss", res.Source, res.Cache)
	}
}

// TestOverloadDoomedRejectedWith429: once the hold histogram says
// solves take seconds, a queued-up request with a 100ms budget is
// rejected up front — 429, Retry-After header, structured body.
func TestOverloadDoomedRejectedWith429(t *testing.T) {
	ts, s, solves := newTestServer(t, Options{MaxInflight: 1, MaxQueue: 8})
	for i := 0; i < 10; i++ {
		s.adm.hold.Observe(5_000_000) // teach the estimator: ~5s holds
	}
	release := pinSlots(t, s)
	defer release()

	req := dwtRequest(16 * 16)
	req.TimeoutMS = 100
	resp, body := postJSON(t, ts.URL+"/v1/schedule", req)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	ra := resp.Header.Get("Retry-After")
	if ra == "" {
		t.Fatal("429 without Retry-After header")
	}
	var werr wire.Error
	if err := json.Unmarshal(body, &werr); err != nil {
		t.Fatal(err)
	}
	if werr.Reason != "shed" {
		t.Fatalf("reason = %q, want shed", werr.Reason)
	}
	if werr.RetryAfterS < 1 || werr.RetryAfterS > 60 {
		t.Fatalf("retry_after_s = %d, want in [1, 60]", werr.RetryAfterS)
	}
	if solves.Load() != 0 {
		t.Fatalf("doomed request reached the solver (%d solves)", solves.Load())
	}

	var st Stats
	getJSON(t, ts.URL+"/statsz", &st)
	if st.Shed[shedDoomed] != 1 {
		t.Fatalf("shed[doomed] = %d, want 1", st.Shed[shedDoomed])
	}
	// Server pushback is not a client error.
	if st.BadRequests != 0 {
		t.Fatalf("bad_requests = %d after a 429, want 0", st.BadRequests)
	}
}

// TestQueuedClientDisconnectReleasesSlot is the -race satellite: a
// request canceled while queued leaves immediately — queue accounting
// returns to zero, the shed is counted as canceled, and the next
// request proceeds normally.
func TestQueuedClientDisconnectReleasesSlot(t *testing.T) {
	ts, s, _ := newTestServer(t, Options{MaxInflight: 1, MaxQueue: 4})
	release := pinSlots(t, s)
	defer release()

	entered := make(chan struct{})
	s.adm.enqueued = func() { close(entered) }

	ctx, cancel := context.WithCancel(context.Background())
	req := dwtRequest(16 * 16)
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		hr, err := http.NewRequestWithContext(ctx, http.MethodPost,
			ts.URL+"/v1/schedule", bytes.NewReader(b))
		if err != nil {
			errc <- err
			return
		}
		hr.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(hr)
		if resp != nil {
			resp.Body.Close()
		}
		errc <- err
	}()

	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("request never joined the admission queue")
	}
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("canceled request returned no client error")
	}

	// The waiter left the queue: accounting back to zero.
	deadline := time.Now().Add(2 * time.Second)
	for s.adm.queued.Load() != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := s.adm.queued.Load(); got != 0 {
		t.Fatalf("queued = %d after disconnect, want 0", got)
	}
	if got := s.adm.depth.Value(); got != 0 {
		t.Fatalf("depth gauge = %d after disconnect, want 0", got)
	}
	var st Stats
	getJSON(t, ts.URL+"/statsz", &st)
	if st.Shed[shedCanceled] != 1 {
		t.Fatalf("shed[canceled] = %d, want 1", st.Shed[shedCanceled])
	}

	// Capacity restored: the next identical request solves optimally.
	s.adm.enqueued = nil
	release()
	resp, body := postJSON(t, ts.URL+"/v1/schedule", dwtRequest(16*16))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("after release: status %d: %s", resp.StatusCode, body)
	}
	var res wire.ScheduleResult
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.Source != "optimal" {
		t.Fatalf("after release: source = %q, want optimal", res.Source)
	}
	release = func() {}
}

// TestBreakerTripsOnFallbackStorm: a run of forced fallbacks trips the
// circuit breaker; while it is open, cold requests skip the optimal
// tier entirely (shed baseline, mode "breaker") instead of queueing
// into a thrashing solver.
func TestBreakerTripsOnFallbackStorm(t *testing.T) {
	ts, s, solves := newTestServer(t, Options{
		Limits:            guard.Limits{MaxMemoEntries: 1}, // every optimal solve aborts → fallback
		BreakerWindow:     4,
		BreakerMinSamples: 4,
		BreakerThreshold:  0.5,
		BreakerCooldown:   time.Hour, // stays open for the test's lifetime
	})
	// Four distinct budgets: four cache misses, four fallbacks.
	for i := int64(0); i < 4; i++ {
		resp, body := postJSON(t, ts.URL+"/v1/schedule", dwtRequest(16*16+i))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("storm %d: status %d: %s", i, resp.StatusCode, body)
		}
		var res wire.ScheduleResult
		if err := json.Unmarshal(body, &res); err != nil {
			t.Fatal(err)
		}
		if res.Source != "fallback" {
			t.Fatalf("storm %d: source = %q, want fallback", i, res.Source)
		}
	}
	if got := s.brk.State(); got != "open" {
		t.Fatalf("breaker = %q after 4/4 fallbacks, want open", got)
	}

	// The fifth request skips the optimal tier: the solve hook fires
	// for the degraded call only, and the shed is labeled breaker.
	before := solves.Load()
	resp, body := postJSON(t, ts.URL+"/v1/schedule", dwtRequest(16*16+100))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("breaker-open: status %d: %s", resp.StatusCode, body)
	}
	var res wire.ScheduleResult
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.Source != "fallback" || res.FallbackCause != "shed" {
		t.Fatalf("breaker-open: source=%q cause=%q, want fallback/shed", res.Source, res.FallbackCause)
	}
	if got := solves.Load() - before; got != 1 {
		t.Fatalf("breaker-open request invoked solve %d times, want 1 (degraded only)", got)
	}

	var st Stats
	getJSON(t, ts.URL+"/statsz", &st)
	if st.Breaker != "open" {
		t.Fatalf("statsz breaker = %q, want open", st.Breaker)
	}
	if st.BreakerTrips != 1 {
		t.Fatalf("breaker_trips = %d, want 1", st.BreakerTrips)
	}
	if st.Shed[shedBreaker] != 1 {
		t.Fatalf("shed[breaker] = %d, want 1", st.Shed[shedBreaker])
	}
}

// TestReadyzStates walks /readyz through ok → overloaded → draining.
func TestReadyzStates(t *testing.T) {
	ts, s, _ := newTestServer(t, Options{MaxInflight: 1, MaxQueue: -1})

	var body map[string]any
	resp := getJSON(t, ts.URL+"/readyz", &body)
	if resp.StatusCode != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("idle: status %d %v, want 200 ok", resp.StatusCode, body["status"])
	}

	// Saturate: the only slot busy, zero-length queue at capacity.
	release := pinSlots(t, s)
	resp = getJSON(t, ts.URL+"/readyz", &body)
	if resp.StatusCode != http.StatusServiceUnavailable || body["status"] != "overloaded" {
		t.Fatalf("saturated: status %d %v, want 503 overloaded", resp.StatusCode, body["status"])
	}
	release()
	resp = getJSON(t, ts.URL+"/readyz", &body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("after release: status %d, want 200", resp.StatusCode)
	}

	// Draining wins over everything and is terminal.
	s.BeginDrain()
	resp = getJSON(t, ts.URL+"/readyz", &body)
	if resp.StatusCode != http.StatusServiceUnavailable || body["status"] != "draining" {
		t.Fatalf("draining: status %d %v, want 503 draining", resp.StatusCode, body["status"])
	}
	// Liveness is unaffected by drain.
	resp = getJSON(t, ts.URL+"/healthz", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz during drain: status %d, want 200", resp.StatusCode)
	}
}

// TestSweepShedsWith429: the sweep path shares the admission queue —
// with the server saturated a sweep is rejected with a structured 429
// (no degraded tier for sweeps).
func TestSweepShedsWith429(t *testing.T) {
	ts, s, _ := newTestServer(t, Options{MaxInflight: 1, MaxQueue: -1})
	release := pinSlots(t, s)
	defer release()

	req := wire.SweepRequest{Family: "dwt", N: 32, D: 4, BudgetsBits: []int64{256, 512}, TimeoutMS: 50}
	resp, body := postJSON(t, ts.URL+"/v1/schedule/sweep", req)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("sweep 429 without Retry-After header")
	}
	var st Stats
	getJSON(t, ts.URL+"/statsz", &st)
	if st.Shed[shedQueueFull] != 1 {
		t.Fatalf("shed[queue_full] = %d, want 1", st.Shed[shedQueueFull])
	}
}
