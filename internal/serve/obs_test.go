package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"wrbpg/internal/guard"
	"wrbpg/internal/obs"
	"wrbpg/internal/serve/wire"
)

// postTraced POSTs body with the X-Wrbpg-Trace header set and returns
// the response plus its body bytes.
func postTraced(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(TraceHeader, "on")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// spanNames flattens a span forest into a set of names.
func spanNames(nodes []*obs.SpanNode, into map[string]*obs.SpanNode) {
	for _, n := range nodes {
		into[n.Name] = n
		spanNames(n.Children, into)
	}
}

// TestTraceEndToEnd is the tracing acceptance test: a traced cold
// schedule yields a retrievable trace whose tree contains the
// request/cache/solve phases, the cache span carries its disposition,
// and the chrome export is loadable JSON. Untraced requests get no
// trace ID header.
func TestTraceEndToEnd(t *testing.T) {
	ts, _, _ := newTestServer(t, Options{})
	req := dwtRequest(16 * 16)

	resp, body := postTraced(t, ts.URL+"/v1/schedule", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("schedule: %d: %s", resp.StatusCode, body)
	}
	id := resp.Header.Get(TraceIDHeader)
	if id == "" {
		t.Fatal("traced request returned no " + TraceIDHeader)
	}

	var ex obs.TraceExport
	if r := getJSON(t, ts.URL+"/v1/trace/"+id, &ex); r.StatusCode != http.StatusOK {
		t.Fatalf("trace fetch: %d", r.StatusCode)
	}
	if ex.TraceID != id {
		t.Fatalf("trace body ID %q, want %q", ex.TraceID, id)
	}
	if len(ex.Spans) != 1 || ex.Spans[0].Name != "request" {
		t.Fatalf("roots = %+v, want single 'request' root", ex.Spans)
	}
	all := map[string]*obs.SpanNode{}
	spanNames(ex.Spans, all)
	for _, want := range []string{"request", "canonicalize", "cache", "build", "admission", "solve", "solve.optimal", "solve.simulate"} {
		if all[want] == nil {
			t.Errorf("span %q missing from trace (have %d spans)", want, len(all))
		}
	}
	if cache := all["cache"]; cache != nil {
		found := false
		for _, a := range cache.Attrs {
			if a.Key == "disposition" && a.Value == "miss" {
				found = true
			}
		}
		if !found {
			t.Errorf("cache span attrs = %v, want disposition=miss", cache.Attrs)
		}
	}
	if solveSp := all["solve"]; solveSp != nil {
		kids := map[string]bool{}
		for _, c := range solveSp.Children {
			kids[c.Name] = true
		}
		if !kids["solve.optimal"] || !kids["solve.simulate"] {
			t.Errorf("solve children = %v, want optimal+simulate nested under solve", solveSp.Children)
		}
	}

	// Chrome export: a JSON array of complete events.
	var evs []obs.ChromeEvent
	if r := getJSON(t, ts.URL+"/v1/trace/"+id+"?format=chrome", &evs); r.StatusCode != http.StatusOK {
		t.Fatalf("chrome fetch: %d", r.StatusCode)
	}
	if len(evs) < 5 {
		t.Fatalf("chrome export has %d events, want the full span set", len(evs))
	}
	for _, ev := range evs {
		if ev.Ph != "X" {
			t.Errorf("chrome event %q ph=%q, want X", ev.Name, ev.Ph)
		}
	}

	// Unknown IDs 404; untraced requests carry no ID header.
	if r := getJSON(t, ts.URL+"/v1/trace/doesnotexist", nil); r.StatusCode != http.StatusNotFound {
		t.Errorf("unknown trace: %d, want 404", r.StatusCode)
	}
	resp2, _ := postJSON(t, ts.URL+"/v1/schedule", req)
	if got := resp2.Header.Get(TraceIDHeader); got != "" {
		t.Errorf("untraced request returned trace ID %q", got)
	}
}

// TestMetricsEndpoint: after mixed traffic, GET /metrics is a valid
// Prometheus 0.0.4 exposition with at least 15 distinct series, and
// the request/cache counters reflect the traffic.
func TestMetricsEndpoint(t *testing.T) {
	ts, _, _ := newTestServer(t, Options{})
	req := dwtRequest(16 * 16)
	postJSON(t, ts.URL+"/v1/schedule", req) // miss
	postJSON(t, ts.URL+"/v1/schedule", req) // hit

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q, want text exposition 0.0.4", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := obs.ParseText(string(raw))
	if err != nil {
		t.Fatalf("/metrics output unparseable: %v", err)
	}
	series := map[string]float64{}
	names := map[string]bool{}
	for _, s := range samples {
		series[s.Series()] = s.Value
		names[s.Name] = true
	}
	if len(series) < 15 {
		t.Errorf("only %d distinct series exposed, want >= 15:\n%s", len(series), raw)
	}
	checks := map[string]float64{
		`wrbpg_http_requests_total{endpoint="schedule"}`: 2,
		"wrbpg_cache_misses_total":                       1,
		"wrbpg_cache_hits_total":                         1,
		"wrbpg_solves_total":                             1,
		"wrbpg_cache_entries":                            1,
	}
	for s, want := range checks {
		if got, ok := series[s]; !ok || got != want {
			t.Errorf("series %s = %v (present=%v), want %v", s, got, ok, want)
		}
	}
	// The solver-side registry (memo counters, worker pool) must ride
	// along in the same exposition.
	for _, name := range []string{"wrbpg_solver_queries_total", "wrbpg_solve_latency_us"} {
		if !names[name] && !names[name+"_count"] {
			t.Errorf("metric family %s missing from merged exposition", name)
		}
	}
}

// TestFallbackReasonInBodyAndMetric: a deterministic budget-limit
// degradation must label the response with the machine-readable cause
// and increment wrbpg_fallback_total{reason="budget"}.
func TestFallbackReasonInBodyAndMetric(t *testing.T) {
	ts, _, _ := newTestServer(t, Options{
		Limits: guard.Limits{MaxMemoEntries: 1},
	})
	req := dwtRequest(16 * 16)
	req.IncludeMoves = false

	resp, body := postJSON(t, ts.URL+"/v1/schedule", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out wire.ScheduleResult
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Source != "fallback" {
		t.Fatalf("source = %q, want fallback", out.Source)
	}
	if out.FallbackCause != "budget" {
		t.Fatalf("fallback_cause = %q, want budget (human text: %q)", out.FallbackCause, out.FallbackReason)
	}

	resp2, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	raw, _ := io.ReadAll(resp2.Body)
	samples, err := obs.ParseText(string(raw))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range samples {
		if s.Name == "wrbpg_fallback_total" && s.Labels["reason"] == "budget" && s.Value >= 1 {
			found = true
		}
	}
	if !found {
		t.Errorf(`wrbpg_fallback_total{reason="budget"} not incremented`)
	}
}

// TestSweepItemReason: sweep items that abort must carry the
// machine-readable reason in their wire error.
func TestSweepItemReason(t *testing.T) {
	ts, _, _ := newTestServer(t, Options{
		Limits: guard.Limits{MaxMemoEntries: 1},
	})
	resp, body := postJSON(t, ts.URL+"/v1/schedule/sweep", sweepReq([]int64{1 << 20}))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep: %d\n%s", resp.StatusCode, body)
	}
	sr := decodeSweep(t, body)
	if sr.Failed == 0 {
		t.Skip("memo ceiling did not trip on this sweep; nothing to assert")
	}
	for _, it := range sr.Items {
		if it.Error == nil {
			continue
		}
		if it.Error.Reason != "budget" {
			t.Errorf("item %d error reason = %q, want budget (%+v)", it.BudgetBits, it.Error.Reason, it.Error)
		}
	}
}

// TestDebugHandler: the -debug-addr surface serves the pprof index and
// the same metrics exposition as the public /metrics.
func TestDebugHandler(t *testing.T) {
	s := New(Options{})
	ts := httptest.NewServer(s.DebugHandler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte("goroutine")) {
		t.Fatalf("pprof index: %d\n%s", resp.StatusCode, body)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if _, err := obs.ParseText(string(raw)); err != nil {
		t.Fatalf("debug /metrics unparseable: %v", err)
	}
}
