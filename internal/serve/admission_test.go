package serve

import (
	"context"
	"sync"
	"testing"
	"time"

	"wrbpg/internal/obs"
)

// newTestAdmission builds an admission queue with fresh (unregistered
// test) metric handles.
func newTestAdmission(slots, maxQueue int) *admission {
	reg := obs.NewRegistry()
	bounds := make([]float64, len(latencyBoundsUS))
	for i, b := range latencyBoundsUS {
		bounds[i] = float64(b)
	}
	return &admission{
		slots:    make(chan struct{}, slots),
		maxQueue: maxQueue,
		depth:    reg.Gauge("test_depth", "t"),
		hold:     reg.Histogram("test_hold", "t", bounds),
	}
}

func TestAdmissionFastPath(t *testing.T) {
	a := newTestAdmission(2, 4)
	tk1, shed := a.Acquire(context.Background(), time.Second)
	if shed != nil {
		t.Fatalf("shed %q with free slots", shed.mode)
	}
	tk2, shed := a.Acquire(context.Background(), time.Second)
	if shed != nil {
		t.Fatalf("shed %q with one free slot", shed.mode)
	}
	tk1.Release()
	tk2.Release()
	if got := a.hold.Count(); got != 2 {
		t.Fatalf("hold histogram count = %d, want 2", got)
	}
}

func TestAdmissionQueueFull(t *testing.T) {
	a := newTestAdmission(1, 0) // no queue at all
	tk, shed := a.Acquire(context.Background(), time.Second)
	if shed != nil {
		t.Fatal("first acquire shed")
	}
	_, shed = a.Acquire(context.Background(), time.Second)
	if shed == nil {
		t.Fatal("second acquire admitted past the slot count with a zero queue")
	}
	if shed.mode != shedQueueFull {
		t.Fatalf("mode = %q, want %q", shed.mode, shedQueueFull)
	}
	if shed.retryAfter < 1 {
		t.Fatalf("retryAfter = %d, want >= 1", shed.retryAfter)
	}
	tk.Release()
	// The slot is free again.
	tk2, shed := a.Acquire(context.Background(), time.Second)
	if shed != nil {
		t.Fatalf("acquire after release shed %q", shed.mode)
	}
	tk2.Release()
}

// TestAdmissionDoomedByEstimate: once the hold histogram reports slow
// solves, an arrival whose deadline budget is smaller than the
// estimated queue wait is shed without queueing.
func TestAdmissionDoomedByEstimate(t *testing.T) {
	a := newTestAdmission(1, 8)
	// Teach the estimator that holds take ~5s.
	for i := 0; i < 10; i++ {
		a.hold.Observe(5_000_000)
	}
	// Occupy the only slot so Acquire leaves the fast path.
	tk, shed := a.Acquire(context.Background(), 0)
	if shed != nil {
		t.Fatal("first acquire shed")
	}
	defer tk.Release()

	_, shed = a.Acquire(context.Background(), 100*time.Millisecond)
	if shed == nil {
		t.Fatal("queued work that could not survive the estimated wait")
	}
	if shed.mode != shedDoomed {
		t.Fatalf("mode = %q, want %q", shed.mode, shedDoomed)
	}
	// 5s median over 1 slot: the estimate is seconds, so Retry-After
	// must be > 1 and bounded.
	if shed.retryAfter < 2 || shed.retryAfter > 60 {
		t.Fatalf("retryAfter = %d, want in [2, 60] for a ~%v estimate", shed.retryAfter, shed.estWait)
	}
	// A request with no deadline budget still queues — and is bounded
	// only by its context.
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan *shedDecision, 1)
	go func() {
		_, sd := a.Acquire(ctx, 0)
		done <- sd
	}()
	for a.queued.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if sd := <-done; sd == nil || sd.mode != shedCanceled {
		t.Fatalf("canceled waiter: %+v, want mode canceled", sd)
	}
}

// TestAdmissionWaitCappedByBudget: a queued request whose deadline
// budget expires while waiting is shed as doomed, not left queued.
func TestAdmissionWaitCappedByBudget(t *testing.T) {
	a := newTestAdmission(1, 8)
	tk, shed := a.Acquire(context.Background(), 0)
	if shed != nil {
		t.Fatal("first acquire shed")
	}
	defer tk.Release()

	start := time.Now()
	_, shed = a.Acquire(context.Background(), 30*time.Millisecond)
	if shed == nil {
		t.Fatal("acquire returned a ticket while the slot was held")
	}
	if shed.mode != shedDoomed {
		t.Fatalf("mode = %q, want %q", shed.mode, shedDoomed)
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("waited %v, want ~the 30ms budget", waited)
	}
	if a.queued.Load() != 0 {
		t.Fatalf("queued = %d after timed-out wait, want 0", a.queued.Load())
	}
}

// TestAdmissionCanceledWaiterReleasesPosition: a waiter whose context
// is canceled leaves the queue immediately (depth gauge back to zero)
// and the next arrival can take the freed position. Run under -race
// this also exercises the CAS-bounded queue accounting.
func TestAdmissionCanceledWaiterReleasesPosition(t *testing.T) {
	a := newTestAdmission(1, 1)
	tk, shed := a.Acquire(context.Background(), 0)
	if shed != nil {
		t.Fatal("first acquire shed")
	}

	ctx, cancel := context.WithCancel(context.Background())
	entered := make(chan struct{})
	a.enqueued = func() { close(entered) }
	done := make(chan *shedDecision, 1)
	go func() {
		_, sd := a.Acquire(ctx, 0)
		done <- sd
	}()
	<-entered
	if a.queued.Load() != 1 || a.depth.Value() != 1 {
		t.Fatalf("queued=%d depth=%d while waiting, want 1/1", a.queued.Load(), a.depth.Value())
	}
	// The queue is at capacity: another arrival is shed queue_full.
	if _, sd := a.Acquire(context.Background(), 0); sd == nil || sd.mode != shedQueueFull {
		t.Fatalf("arrival at capacity: %+v, want queue_full", sd)
	}
	cancel()
	if sd := <-done; sd == nil || sd.mode != shedCanceled {
		t.Fatalf("canceled waiter: %+v, want canceled", sd)
	}
	if a.queued.Load() != 0 || a.depth.Value() != 0 {
		t.Fatalf("queued=%d depth=%d after cancel, want 0/0", a.queued.Load(), a.depth.Value())
	}
	// The freed position admits the next waiter once the slot releases.
	a.enqueued = nil
	got := make(chan *ticket, 1)
	go func() {
		tk2, _ := a.Acquire(context.Background(), 0)
		got <- tk2
	}()
	tk.Release()
	tk2 := <-got
	if tk2 == nil {
		t.Fatal("waiter after cancel never admitted")
	}
	tk2.Release()
}

// TestAdmissionConcurrentChurn hammers the queue from many goroutines
// under -race: the invariants are no lost slots and queue accounting
// returning to zero.
func TestAdmissionConcurrentChurn(t *testing.T) {
	a := newTestAdmission(2, 4)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				tk, shed := a.Acquire(context.Background(), 10*time.Millisecond)
				if shed != nil {
					continue
				}
				tk.Release()
			}
		}()
	}
	wg.Wait()
	if a.queued.Load() != 0 || a.depth.Value() != 0 {
		t.Fatalf("queued=%d depth=%d after churn, want 0/0", a.queued.Load(), a.depth.Value())
	}
	// Both slots are free.
	t1, s1 := a.Acquire(context.Background(), time.Second)
	t2, s2 := a.Acquire(context.Background(), time.Second)
	if s1 != nil || s2 != nil {
		t.Fatal("slots leaked during churn")
	}
	t1.Release()
	t2.Release()
}

func TestMedianHoldEstimate(t *testing.T) {
	a := newTestAdmission(2, 4)
	if got := a.estimateWait(0); got != 0 {
		t.Fatalf("cold-start estimate = %v, want 0", got)
	}
	for i := 0; i < 9; i++ {
		a.hold.Observe(40) // ≤ first bucket (50µs)
	}
	// Median in the 50µs bucket; 2 slots, 0 queued → one wave.
	if got := a.estimateWait(0); got != 50*time.Microsecond {
		t.Fatalf("estimate = %v, want 50µs", got)
	}
	// 4 queued ahead over 2 slots → (4+2)/2 = 3 waves.
	if got := a.estimateWait(4); got != 150*time.Microsecond {
		t.Fatalf("estimate = %v, want 150µs", got)
	}
}
