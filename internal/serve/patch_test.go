package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"wrbpg/internal/serve/wire"
)

// patchReq is the canonical test patch: an inline ktree base with one
// input-node delta.
func patchReq(budgets []int64, deltas []map[string]any) map[string]any {
	return map[string]any{
		"family":       "ktree",
		"k":            3,
		"height":       3,
		"deltas":       deltas,
		"budgets_bits": budgets,
	}
}

func decodePatch(t *testing.T, body []byte) wire.PatchResponse {
	t.Helper()
	var pr wire.PatchResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatalf("decoding patch response: %v\n%s", err, body)
	}
	return pr
}

// TestPatchInlineAndByBaseKey is the endpoint's happy path: an inline
// patch builds (and pools) the base session and answers the budgets; a
// follow-up patch naming the returned base_key hits the same session
// and reports the memo cells the incremental engine reused; and every
// answer agrees with /v1/schedule solving the patched instance cold.
func TestPatchInlineAndByBaseKey(t *testing.T) {
	ts, _, _ := newTestServer(t, Options{})

	var lb wire.LowerBoundResult
	getJSON(t, ts.URL+"/v1/lowerbound?family=ktree&k=3&height=3", &lb)
	min := lb.MinExistenceBits
	budgets := []int64{min - 1, min + 4, min + 9}

	// Input nodes of the full 3-ary height-3 tree are patch-safe; node 0
	// is a leaf under FullTree's deterministic numbering.
	resp, body := postJSON(t, ts.URL+"/v1/schedule/patch",
		patchReq(budgets, []map[string]any{{"node": 0, "weight_bits": 1}}))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("inline patch: %d\n%s", resp.StatusCode, body)
	}
	pr := decodePatch(t, body)
	if pr.Session != "miss" || pr.BaseKey == "" || pr.PatchKey == pr.BaseKey {
		t.Fatalf("inline patch: session=%q base=%q patch=%q", pr.Session, pr.BaseKey, pr.PatchKey)
	}
	if pr.DeltasApplied != 1 || pr.ChangedNodes != 1 {
		t.Fatalf("inline patch stats: %+v", pr)
	}
	if len(pr.Items) != len(budgets) || pr.Failed != 0 {
		t.Fatalf("inline patch items: %+v", pr)
	}

	// Same base, different delta, addressed by base_key: a pool hit that
	// re-patches the warm session and reuses the surviving memo cells.
	resp, body = postJSON(t, ts.URL+"/v1/schedule/patch", map[string]any{
		"base_key":     pr.BaseKey,
		"deltas":       []map[string]any{{"node": 0, "weight_bits": 2}},
		"budgets_bits": budgets,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("base_key patch: %d\n%s", resp.StatusCode, body)
	}
	pr2 := decodePatch(t, body)
	if pr2.Session != "hit" || pr2.BaseKey != pr.BaseKey {
		t.Fatalf("base_key patch: session=%q base=%q, want hit on %q", pr2.Session, pr2.BaseKey, pr.BaseKey)
	}
	if pr2.CellsInvalidated <= 0 || pr2.CellsReused <= 0 {
		t.Errorf("re-patch of a warm session: invalidated=%d reused=%d, want both > 0",
			pr2.CellsInvalidated, pr2.CellsReused)
	}
	if pr2.PatchKey == pr.PatchKey {
		t.Errorf("different deltas share patch key %q", pr2.PatchKey)
	}

	// Cross-check one budget against the cold single-solve path with the
	// same deltas in the request body.
	resp, body = postJSON(t, ts.URL+"/v1/schedule", map[string]any{
		"family": "ktree", "k": 3, "height": 3,
		"deltas":      []map[string]any{{"node": 0, "weight_bits": 2}},
		"budget_bits": budgets[1],
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("schedule with deltas: %d\n%s", resp.StatusCode, body)
	}
	var one wire.ScheduleResult
	if err := json.Unmarshal(body, &one); err != nil {
		t.Fatal(err)
	}
	if one.CostBits != pr2.Items[1].CostBits {
		t.Errorf("patch cost %d at budget %d disagrees with cold /v1/schedule cost %d",
			pr2.Items[1].CostBits, budgets[1], one.CostBits)
	}

	// A delta-free sweep of the same base must revert the pooled session
	// and answer at base weights — identical to a fresh server's sweep.
	resp, body = postJSON(t, ts.URL+"/v1/schedule/sweep", sweepReq(budgets))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep after patch: %d\n%s", resp.StatusCode, body)
	}
	sr := decodeSweep(t, body)
	if sr.Session != "hit" {
		t.Fatalf("sweep after patch: session=%q, want hit (same base pool entry)", sr.Session)
	}
	ts2, _, _ := newTestServer(t, Options{})
	_, body2 := postJSON(t, ts2.URL+"/v1/schedule/sweep", sweepReq(budgets))
	fresh := decodeSweep(t, body2)
	for i := range sr.Items {
		if sr.Items[i].CostBits != fresh.Items[i].CostBits || sr.Items[i].Feasible != fresh.Items[i].Feasible {
			t.Errorf("item %d after revert: %+v, fresh server says %+v", i, sr.Items[i], fresh.Items[i])
		}
	}

	// Counters: two patches, the second a no-op-free re-patch; the
	// session gauges cover the pool.
	var st Stats
	getJSON(t, ts.URL+"/statsz", &st)
	if st.Patches != 2 || st.PatchDeltas != 2 || st.PatchBudgets != uint64(2*len(budgets)) ||
		st.PatchChangedNodes != 2 || st.PatchNoops != 0 {
		t.Errorf("patch counters: %+v", st)
	}
	if st.SessionsLive != 1 || st.SessionCapacity < 1 {
		t.Errorf("session gauges: live=%d capacity=%d", st.SessionsLive, st.SessionCapacity)
	}
}

// TestPatchValidation: malformed patches are structured 4xx errors.
func TestPatchValidation(t *testing.T) {
	ts, _, _ := newTestServer(t, Options{MaxPatchDeltas: 2, MaxSweepBudgets: 4})
	d := []map[string]any{{"node": 0, "weight_bits": 1}}
	cases := []struct {
		name string
		body map[string]any
		want int
	}{
		{"empty deltas", patchReq([]int64{4096}, []map[string]any{}), http.StatusBadRequest},
		{"too many deltas", patchReq([]int64{4096}, []map[string]any{
			{"node": 0, "weight_bits": 1}, {"node": 1, "weight_bits": 1}, {"node": 2, "weight_bits": 1},
		}), http.StatusBadRequest},
		{"empty budgets", patchReq([]int64{}, d), http.StatusBadRequest},
		{"non-positive budget", patchReq([]int64{0}, d), http.StatusBadRequest},
		{"negative node", patchReq([]int64{4096}, []map[string]any{{"node": -1, "weight_bits": 1}}), http.StatusBadRequest},
		{"zero weight", patchReq([]int64{4096}, []map[string]any{{"node": 0, "weight_bits": 0}}), http.StatusBadRequest},
		{"node out of range", patchReq([]int64{4096}, []map[string]any{{"node": 9999, "weight_bits": 1}}), http.StatusBadRequest},
		{"mvm family", map[string]any{
			"family": "mvm", "m": 4, "n": 4, "deltas": d, "budgets_bits": []int64{4096},
		}, http.StatusBadRequest},
		{"base_key and family", map[string]any{
			"base_key": "ktree/feed", "family": "ktree", "k": 3, "height": 3,
			"deltas": d, "budgets_bits": []int64{4096},
		}, http.StatusBadRequest},
		{"unknown base_key", map[string]any{
			"base_key": "ktree/0000", "deltas": d, "budgets_bits": []int64{4096},
		}, http.StatusNotFound},
	}
	for _, tc := range cases {
		resp, body := postJSON(t, ts.URL+"/v1/schedule/patch", tc.body)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: code %d, want %d\n%s", tc.name, resp.StatusCode, tc.want, body)
		}
		var we wire.Error
		if err := json.Unmarshal(body, &we); err != nil || we.Message == "" {
			t.Errorf("%s: unstructured error body %s", tc.name, body)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/schedule/patch")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET patch: code %d, want 405", resp.StatusCode)
	}
}

// TestPatchMetricsExposition: the patch and session-pool series appear
// on /metrics in Prometheus exposition format.
func TestPatchMetricsExposition(t *testing.T) {
	ts, _, _ := newTestServer(t, Options{})
	if resp, body := postJSON(t, ts.URL+"/v1/schedule/patch",
		patchReq([]int64{4096}, []map[string]any{{"node": 0, "weight_bits": 1}})); resp.StatusCode != http.StatusOK {
		t.Fatalf("patch: %d\n%s", resp.StatusCode, body)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, name := range []string{
		"wrbpg_patch_budgets_total",
		"wrbpg_patch_deltas_total",
		"wrbpg_patch_changed_nodes_total",
		"wrbpg_patch_noop_total",
		"wrbpg_sweep_session_capacity",
		"wrbpg_sweep_session_evictions_total",
		`wrbpg_http_requests_total{endpoint="patch"}`,
	} {
		if !strings.Contains(text, name) {
			t.Errorf("/metrics missing %s", name)
		}
	}
}
