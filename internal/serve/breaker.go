// The fallback-storm circuit breaker: when the optimal tier is
// thrashing — most solves burning their whole deadline only to degrade
// to the baseline anyway — the breaker opens and requests skip
// straight to the baseline, so solver slots stop being wasted on work
// that was going to degrade regardless. After a cooldown the breaker
// goes half-open and lets exactly one probe attempt the optimal tier:
// an optimal answer closes it, another fallback re-opens it.
//
// The caller contract: every Allow() == true must be balanced by
// exactly one Record (the solve ran — report whether it degraded) or
// Cancel (the request was shed before reaching the optimal tier, so it
// says nothing about solver health). A nil *breaker is a disabled
// breaker: Allow always admits, Record/Cancel are no-ops.

package serve

import (
	"sync"
	"time"

	"wrbpg/internal/obs"
)

// breakerState is the classic three-state machine. The numeric values
// are the wrbpg_breaker_state gauge encoding.
type breakerState int32

const (
	breakerClosed   breakerState = 0
	breakerHalfOpen breakerState = 1
	breakerOpen     breakerState = 2
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerHalfOpen:
		return "half_open"
	default:
		return "open"
	}
}

// breaker tracks the fallback rate of recent solves over a sliding
// window and trips open when it crosses the threshold. All state is
// behind one mutex — the per-solve cost is a few loads and stores,
// invisible next to a solve.
type breaker struct {
	mu sync.Mutex
	// window is the ring of recent solve outcomes (true = degraded);
	// n is the filled count, idx the next write slot, falls the number
	// of true entries currently in the window.
	window []bool
	n      int
	idx    int
	falls  int
	// threshold is the fallback rate that trips the breaker once the
	// window holds at least minSamples outcomes.
	threshold  float64
	minSamples int
	// cooldown is how long the breaker stays open before allowing a
	// half-open probe.
	cooldown time.Duration
	state    breakerState
	openedAt time.Time
	// probing marks the single in-flight half-open probe.
	probing bool

	gauge *obs.Gauge
	trips *obs.Counter
	// now is replaceable in tests.
	now func() time.Time
}

// newBreaker builds the breaker from resolved options (BreakerWindow
// already validated > 0); minSamples is clamped to the window so a
// misconfigured floor cannot make the breaker untrippable.
func newBreaker(window, minSamples int, threshold float64, cooldown time.Duration, gauge *obs.Gauge, trips *obs.Counter) *breaker {
	if minSamples > window {
		minSamples = window
	}
	return &breaker{
		window:     make([]bool, window),
		threshold:  threshold,
		minSamples: minSamples,
		cooldown:   cooldown,
		gauge:      gauge,
		trips:      trips,
		now:        time.Now,
	}
}

// Allow reports whether the request may attempt the optimal tier.
// While open it returns false (callers degrade without queueing);
// after the cooldown it transitions to half-open and admits a single
// probe.
func (b *breaker) Allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.setState(breakerHalfOpen)
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Record reports one completed solve that Allow admitted: fallback
// says whether it degraded to the baseline. In half-open the outcome
// decides the next state; closed slides the window and may trip.
func (b *breaker) Record(fallback bool) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerHalfOpen:
		b.probing = false
		if fallback {
			b.trip()
		} else {
			b.reset()
		}
		return
	case breakerOpen:
		// A solve admitted before the trip finishing late: the window
		// was already judged, ignore the straggler.
		return
	}
	if b.n == len(b.window) {
		if b.window[b.idx] {
			b.falls--
		}
	} else {
		b.n++
	}
	b.window[b.idx] = fallback
	if fallback {
		b.falls++
	}
	b.idx = (b.idx + 1) % len(b.window)
	if b.n >= b.minSamples && float64(b.falls) >= b.threshold*float64(b.n) {
		b.trip()
	}
}

// Cancel returns an unused Allow: the request was shed (or canceled)
// before reaching the optimal tier, so it carries no health signal. In
// half-open it frees the probe slot for the next request.
func (b *breaker) Cancel() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerHalfOpen {
		b.probing = false
	}
}

// State names the current state for /statsz and /readyz; "disabled"
// for a nil breaker.
func (b *breaker) State() string {
	if b == nil {
		return "disabled"
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state.String()
}

// trip opens the breaker and clears the window (called locked).
func (b *breaker) trip() {
	b.setState(breakerOpen)
	b.openedAt = b.now()
	b.probing = false
	b.n, b.idx, b.falls = 0, 0, 0
	b.trips.Inc()
}

// reset closes the breaker with a fresh window (called locked).
func (b *breaker) reset() {
	b.setState(breakerClosed)
	b.n, b.idx, b.falls = 0, 0, 0
}

// setState updates the state and its gauge (called locked).
func (b *breaker) setState(s breakerState) {
	b.state = s
	b.gauge.Set(int64(s))
}
