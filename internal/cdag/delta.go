// Weight deltas: the canonical mutation vocabulary of the incremental
// re-solve engine. A patch names absolute replacement weights (not
// additive offsets), so applying the same delta list twice is
// idempotent and a delta list composed with an instance identifies one
// concrete weighted graph — which is what lets content-addressed cache
// keys cover patched instances.

package cdag

import "sort"

// WeightDelta replaces one node's weight. Weight is the node's new
// absolute weight in bits (not an offset), so delta lists are
// idempotent and order-free once canonicalized.
type WeightDelta struct {
	// Node is the target node.
	Node NodeID
	// Weight is the node's new weight in bits; must be positive.
	Weight Weight
}

// CanonicalDeltas sorts deltas by node and merges duplicates
// last-wins, returning the canonical form used in cache keys and by
// Invalidate implementations: strictly increasing node IDs, one entry
// per node. It returns nil for an empty input and never aliases ds.
func CanonicalDeltas(ds []WeightDelta) []WeightDelta {
	if len(ds) == 0 {
		return nil
	}
	out := make([]WeightDelta, len(ds))
	copy(out, ds)
	// Stable keeps the later of two updates to the same node adjacent
	// and last, so the merge below is "last write wins".
	sort.SliceStable(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	w := 0
	for i := 1; i < len(out); i++ {
		if out[i].Node == out[w].Node {
			out[w].Weight = out[i].Weight
			continue
		}
		w++
		out[w] = out[i]
	}
	return out[:w+1]
}
