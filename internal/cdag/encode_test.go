package cdag

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestGraphJSONRoundTrip(t *testing.T) {
	g, _ := diamond(t)
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	var back Graph
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !g.Equal(&back) {
		t.Error("round trip changed the graph")
	}
}

func TestGraphWriteReadJSON(t *testing.T) {
	g, _ := diamond(t)
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(back) {
		t.Error("stream round trip changed the graph")
	}
}

func TestGraphUnmarshalRejectsBadInput(t *testing.T) {
	cases := []string{
		`{"nodes":[{"w":0}]}`,                       // zero weight
		`{"nodes":[{"w":1,"parents":[0]}]}`,         // self/forward parent
		`{"nodes":[{"w":1},{"w":1,"parents":[5]}]}`, // out of range
		`{"nodes":`, // truncated
	}
	for _, c := range cases {
		var g Graph
		if err := json.Unmarshal([]byte(c), &g); err == nil {
			t.Errorf("%q accepted", c)
		}
	}
	if _, err := ReadJSON(strings.NewReader("{")); err == nil {
		t.Error("truncated stream accepted")
	}
}

func TestGraphEqual(t *testing.T) {
	g, ids := diamond(t)
	h := g.Clone()
	if !g.Equal(h) {
		t.Fatal("clone should be equal")
	}
	h.SetWeight(ids[0], 99)
	if g.Equal(h) {
		t.Error("weight change undetected")
	}
	short := &Graph{}
	short.AddNode(1, "x")
	if g.Equal(short) {
		t.Error("size change undetected")
	}
	// Different parents.
	p := &Graph{}
	a := p.AddNode(1, "a")
	b := p.AddNode(2, "b", a)
	_ = b
	q := &Graph{}
	qa := q.AddNode(1, "a")
	q.AddNode(2, "b", qa)
	if !p.Equal(q) {
		t.Error("identical graphs unequal")
	}
}
