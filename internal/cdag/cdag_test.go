package cdag

import (
	"strings"
	"testing"
	"testing/quick"
)

// diamond builds a→{b,c}→d with the given weights.
func diamond(t *testing.T) (*Graph, []NodeID) {
	t.Helper()
	g := &Graph{}
	a := g.AddNode(1, "a")
	b := g.AddNode(2, "b", a)
	c := g.AddNode(3, "c", a)
	d := g.AddNode(4, "d", b, c)
	return g, []NodeID{a, b, c, d}
}

func TestAddNodeBasics(t *testing.T) {
	g, ids := diamond(t)
	if g.Len() != 4 {
		t.Fatalf("Len = %d", g.Len())
	}
	if g.Weight(ids[1]) != 2 || g.Name(ids[1]) != "b" {
		t.Errorf("node b: weight %d name %q", g.Weight(ids[1]), g.Name(ids[1]))
	}
	if g.InDegree(ids[3]) != 2 || g.OutDegree(ids[0]) != 2 {
		t.Errorf("degrees wrong")
	}
	ps := g.Parents(ids[3])
	if len(ps) != 2 || ps[0] != ids[1] || ps[1] != ids[2] {
		t.Errorf("parents of d = %v", ps)
	}
	cs := g.Children(ids[0])
	if len(cs) != 2 || cs[0] != ids[1] || cs[1] != ids[2] {
		t.Errorf("children of a = %v", cs)
	}
}

func TestAddNodePanics(t *testing.T) {
	assertPanics := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	assertPanics("zero weight", func() {
		g := &Graph{}
		g.AddNode(0, "x")
	})
	assertPanics("negative weight", func() {
		g := &Graph{}
		g.AddNode(-1, "x")
	})
	assertPanics("forward parent", func() {
		g := &Graph{}
		g.AddNode(1, "x", 0)
	})
	assertPanics("SetWeight zero", func() {
		g := &Graph{}
		v := g.AddNode(1, "x")
		g.SetWeight(v, 0)
	})
}

func TestSourcesSinks(t *testing.T) {
	g, ids := diamond(t)
	srcs := g.Sources()
	if len(srcs) != 1 || srcs[0] != ids[0] {
		t.Errorf("sources = %v", srcs)
	}
	sinks := g.Sinks()
	if len(sinks) != 1 || sinks[0] != ids[3] {
		t.Errorf("sinks = %v", sinks)
	}
	if !g.IsSource(ids[0]) || g.IsSource(ids[1]) {
		t.Error("IsSource wrong")
	}
	if !g.IsSink(ids[3]) || g.IsSink(ids[2]) {
		t.Error("IsSink wrong")
	}
	if g.SourceWeight() != 1 || g.SinkWeight() != 4 {
		t.Errorf("weights: src %d sink %d", g.SourceWeight(), g.SinkWeight())
	}
	if g.TotalWeight() != 10 {
		t.Errorf("total = %d", g.TotalWeight())
	}
}

func TestEdgeQueries(t *testing.T) {
	g, ids := diamond(t)
	if g.EdgeCount() != 4 {
		t.Errorf("edges = %d", g.EdgeCount())
	}
	if !g.HasEdge(ids[0], ids[1]) || g.HasEdge(ids[1], ids[0]) || g.HasEdge(ids[0], ids[3]) {
		t.Error("HasEdge wrong")
	}
}

func TestValidate(t *testing.T) {
	g, _ := diamond(t)
	if err := g.Validate(); err != nil {
		t.Errorf("diamond should validate: %v", err)
	}
	empty := &Graph{}
	if err := empty.Validate(); err == nil {
		t.Error("empty graph should fail")
	}
	isolated := &Graph{}
	isolated.AddNode(1, "lonely")
	if err := isolated.Validate(); err == nil {
		t.Error("isolated node should fail (source ∩ sink must be empty)")
	}
}

func TestTopoOrder(t *testing.T) {
	g, _ := diamond(t)
	order := g.TopoOrder()
	pos := map[NodeID]int{}
	for i, v := range order {
		pos[v] = i
	}
	for v := 0; v < g.Len(); v++ {
		for _, p := range g.Parents(NodeID(v)) {
			if pos[p] >= pos[NodeID(v)] {
				t.Fatalf("parent %d not before child %d", p, v)
			}
		}
	}
}

func TestMaxComputePressure(t *testing.T) {
	g, _ := diamond(t)
	// d: 4+2+3 = 9; b: 2+1 = 3; c: 3+1 = 4.
	if got := g.MaxComputePressure(); got != 9 {
		t.Errorf("pressure = %d, want 9", got)
	}
}

func TestIsTreeAndMaxInDegree(t *testing.T) {
	g, _ := diamond(t)
	if g.IsTree() {
		t.Error("diamond is not a tree (node a has out-degree 2)")
	}
	tree := &Graph{}
	l1 := tree.AddNode(1, "l1")
	l2 := tree.AddNode(1, "l2")
	l3 := tree.AddNode(1, "l3")
	tree.AddNode(1, "r", l1, l2, l3)
	if !tree.IsTree() {
		t.Error("star should be a tree")
	}
	if tree.MaxInDegree() != 3 {
		t.Errorf("max in-degree = %d", tree.MaxInDegree())
	}
	// Two sinks → not a tree.
	two := &Graph{}
	a := two.AddNode(1, "a")
	two.AddNode(1, "b", a)
	two.AddNode(1, "c", a)
	if two.IsTree() {
		t.Error("two sinks should not be a tree")
	}
}

func TestAncestorsDescendants(t *testing.T) {
	g, ids := diamond(t)
	anc := g.Ancestors(ids[3])
	if len(anc) != 3 || !anc[ids[0]] || !anc[ids[1]] || !anc[ids[2]] {
		t.Errorf("ancestors of d = %v", anc)
	}
	if len(g.Ancestors(ids[0])) != 0 {
		t.Error("source has no ancestors")
	}
	desc := g.Descendants(ids[0])
	if len(desc) != 3 {
		t.Errorf("descendants of a = %v", desc)
	}
	if len(g.Descendants(ids[3])) != 0 {
		t.Error("sink has no descendants")
	}
}

func TestPrune(t *testing.T) {
	g, ids := diamond(t)
	// Removing c (and nothing else) is legal: d depends on it? Yes —
	// d is a child of c, so removing c alone must fail.
	if _, _, err := g.Prune(map[NodeID]bool{ids[2]: true}); err == nil {
		t.Error("pruning a node with kept children should fail")
	}
	// Removing c and d works, leaving a→b.
	pruned, mapping, err := g.Prune(map[NodeID]bool{ids[2]: true, ids[3]: true})
	if err != nil {
		t.Fatal(err)
	}
	if pruned.Len() != 2 {
		t.Fatalf("pruned len = %d", pruned.Len())
	}
	if mapping[ids[2]] != None || mapping[ids[3]] != None {
		t.Error("removed nodes should map to None")
	}
	if pruned.Weight(mapping[ids[1]]) != 2 {
		t.Error("weights not preserved")
	}
	if !pruned.HasEdge(mapping[ids[0]], mapping[ids[1]]) {
		t.Error("edge a→b lost")
	}
}

func TestClone(t *testing.T) {
	g, ids := diamond(t)
	c := g.Clone()
	if c.Len() != g.Len() || c.EdgeCount() != g.EdgeCount() {
		t.Fatal("clone shape differs")
	}
	c.SetWeight(ids[0], 100)
	if g.Weight(ids[0]) == 100 {
		t.Error("clone shares weight storage")
	}
}

func TestDOT(t *testing.T) {
	g, _ := diamond(t)
	dot := g.DOT("diamond")
	if !strings.Contains(dot, "digraph") || !strings.Contains(dot, "n0 -> n1") {
		t.Errorf("DOT output malformed:\n%s", dot)
	}
}

func TestSortedIDs(t *testing.T) {
	set := map[NodeID]bool{5: true, 1: true, 3: true}
	ids := SortedIDs(set)
	if len(ids) != 3 || ids[0] != 1 || ids[1] != 3 || ids[2] != 5 {
		t.Errorf("SortedIDs = %v", ids)
	}
}

// TestBuilderInvariantsQuick: any graph built through AddNode
// validates, has consistent parent/child mirrors, and insertion order
// is topological.
func TestBuilderInvariantsQuick(t *testing.T) {
	f := func(seed int64) bool {
		g := &Graph{}
		r := seed
		next := func(n int64) int64 {
			r = r*6364136223846793005 + 1442695040888963407
			v := r % n
			if v < 0 {
				v = -v
			}
			return v
		}
		// First two nodes are sources, the rest pick 1–2 earlier
		// parents.
		g.AddNode(Weight(next(5)+1), "s0")
		g.AddNode(Weight(next(5)+1), "s1")
		for i := 2; i < 10; i++ {
			p1 := NodeID(next(int64(i)))
			if next(2) == 0 {
				p2 := NodeID(next(int64(i)))
				if p2 != p1 {
					g.AddNode(Weight(next(5)+1), "n", p1, p2)
					continue
				}
			}
			g.AddNode(Weight(next(5)+1), "n", p1)
		}
		// Parent/child mirror consistency.
		for v := 0; v < g.Len(); v++ {
			for _, p := range g.Parents(NodeID(v)) {
				found := false
				for _, c := range g.Children(p) {
					if c == NodeID(v) {
						found = true
					}
				}
				if !found {
					return false
				}
			}
		}
		// Validate may only fail for isolated nodes (a random source
		// that never got children); everything else must hold.
		isolated := false
		for v := 0; v < g.Len(); v++ {
			if g.InDegree(NodeID(v)) == 0 && g.OutDegree(NodeID(v)) == 0 {
				isolated = true
			}
		}
		return isolated || g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
