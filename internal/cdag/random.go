// Seeded random CDAG generation: the fixture source for the anytime
// scheduler's property tests, the cdag-check end-to-end gate, and the
// BENCH_9 roster. Determinism matters more than realism here — the
// same seed must describe the same graph in every process so the
// acceptance numbers are reproducible — but the shape is tuned to look
// like real dataflow: a few wide source layers, fan-in biased to
// recent values, and weights spanning a decade so the weighted budget
// constraint actually bites.

package cdag

import "math/rand"

// Random builds a pseudo-random valid CDAG with exactly n ≥ 2 nodes,
// deterministically from seed. Every non-source node draws 1–3
// parents among its predecessors (biased toward recent nodes, the
// locality of real dataflow), weights are uniform in [4, 48], and a
// final pass attaches any childless source to a later node so
// Validate's no-isolated-node invariant holds by construction.
func Random(seed int64, n int) *Graph {
	if n < 2 {
		n = 2
	}
	rng := rand.New(rand.NewSource(seed))
	g := &Graph{}
	// A source prefix of roughly n/5 nodes (at least one) feeds the rest.
	sources := n/5 + 1
	if sources >= n {
		sources = n - 1
	}
	w := func() Weight { return Weight(4 + rng.Intn(45)) }
	for v := 0; v < sources; v++ {
		g.AddNode(w(), "")
	}
	for v := sources; v < n; v++ {
		k := 1 + rng.Intn(3)
		if k > v {
			k = v
		}
		seen := map[NodeID]bool{}
		parents := make([]NodeID, 0, k)
		for len(parents) < k {
			// Two draws, keep the larger: biases fan-in toward recently
			// added nodes, like the sliding live sets of real kernels.
			a, b := rng.Intn(v), rng.Intn(v)
			if b > a {
				a = b
			}
			p := NodeID(a)
			if !seen[p] {
				seen[p] = true
				parents = append(parents, p)
			}
		}
		g.AddNode(w(), "", parents...)
	}
	// Attach any isolated source to a random later node. The edge runs
	// low ID → high ID, so insertion order stays topological and the
	// node count stays exactly n.
	for v := 0; v < sources; v++ {
		if g.OutDegree(NodeID(v)) == 0 {
			u := NodeID(sources + rng.Intn(n-sources))
			g.parents[u] = append(g.parents[u], NodeID(v))
			g.children[v] = append(g.children[v], u)
		}
	}
	return g
}
