package cdag

import (
	"strings"
	"testing"
)

func TestTryAddNodeErrors(t *testing.T) {
	var g Graph
	if _, err := g.TryAddNode(0, "bad"); err == nil {
		t.Fatal("zero weight accepted")
	}
	if _, err := g.TryAddNode(-3, "bad"); err == nil {
		t.Fatal("negative weight accepted")
	}
	if _, err := g.TryAddNode(1, "bad", 0); err == nil {
		t.Fatal("nonexistent parent accepted")
	}
	if g.Len() != 0 {
		t.Fatalf("failed TryAddNode mutated the graph: %d nodes", g.Len())
	}
	a, err := g.TryAddNode(2, "a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.TryAddNode(1, "bad", a+1); err == nil {
		t.Fatal("forward parent reference accepted")
	}
	b, err := g.TryAddNode(3, "b", a)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 2 || g.Weight(b) != 3 || len(g.Parents(b)) != 1 {
		t.Fatal("valid TryAddNode misbuilt the graph")
	}
}

func TestAddNodePanicsMatchTryErrors(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("AddNode(0) did not panic")
		}
		if !strings.Contains(r.(string), "weight must be positive") {
			t.Fatalf("panic message %q", r)
		}
	}()
	var g Graph
	g.AddNode(0, "bad")
}

func TestTrySetWeight(t *testing.T) {
	var g Graph
	v := g.AddNode(2, "a")
	if err := g.TrySetWeight(v, 0); err == nil {
		t.Fatal("zero weight accepted")
	}
	if err := g.TrySetWeight(v+1, 4); err == nil {
		t.Fatal("nonexistent node accepted")
	}
	if g.Weight(v) != 2 {
		t.Fatal("failed TrySetWeight mutated the weight")
	}
	if err := g.TrySetWeight(v, 7); err != nil {
		t.Fatal(err)
	}
	if g.Weight(v) != 7 {
		t.Fatal("TrySetWeight did not apply")
	}
}
