// Package cdag provides node-weighted computational directed acyclic
// graphs (CDAGs), the substrate on which the weighted red-blue pebble
// game is played.
//
// A CDAG G = (V, E, w, B) has a positive integer weight per node
// (measured in bits in this repository) and a weighted red-pebble
// budget B. Nodes with in-degree zero are sources (inputs); nodes with
// out-degree zero are sinks (outputs). The package offers a builder,
// structural queries (sources, sinks, topological order, tree shape),
// validation, and the pruning transform used by the DWT scheduler.
package cdag

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// NodeID identifies a node within a single Graph. IDs are dense and
// assigned in insertion order starting from 0.
type NodeID int32

// None is the sentinel for "no node".
const None NodeID = -1

// Weight is a node weight or budget measured in bits.
type Weight = int64

// Graph is a node-weighted CDAG. The zero value is an empty graph
// ready for AddNode calls.
type Graph struct {
	weights  []Weight
	parents  [][]NodeID
	children [][]NodeID
	names    []string
}

// ErrCycle is returned by Validate when the edge relation is cyclic.
var ErrCycle = errors.New("cdag: graph contains a cycle")

// AddNode appends a node with the given weight, display name and
// parent set, returning its ID. Parents must already exist; this keeps
// insertion order a valid topological order by construction. It panics
// on invalid input; use TryAddNode when weights or parent IDs come
// from untrusted input (flags, files).
func (g *Graph) AddNode(w Weight, name string, parents ...NodeID) NodeID {
	id, err := g.TryAddNode(w, name, parents...)
	if err != nil {
		panic(err.Error())
	}
	return id
}

// TryAddNode is AddNode returning an error instead of panicking on a
// non-positive weight or a parent that does not exist. On error the
// graph is unchanged.
func (g *Graph) TryAddNode(w Weight, name string, parents ...NodeID) (NodeID, error) {
	if w <= 0 {
		return None, fmt.Errorf("cdag: node weight must be positive, got %d", w)
	}
	id := NodeID(len(g.weights))
	for _, p := range parents {
		if p < 0 || p >= id {
			return None, fmt.Errorf("cdag: parent %d of node %d does not exist", p, id)
		}
	}
	g.weights = append(g.weights, w)
	ps := make([]NodeID, len(parents))
	copy(ps, parents)
	g.parents = append(g.parents, ps)
	g.children = append(g.children, nil)
	g.names = append(g.names, name)
	for _, p := range parents {
		g.children[p] = append(g.children[p], id)
	}
	return id, nil
}

// Len returns the number of nodes.
func (g *Graph) Len() int { return len(g.weights) }

// Weight returns the weight of node v.
func (g *Graph) Weight(v NodeID) Weight { return g.weights[v] }

// SetWeight overwrites the weight of node v. Weights must stay
// positive; it panics otherwise — use TrySetWeight for untrusted
// input.
func (g *Graph) SetWeight(v NodeID, w Weight) {
	if err := g.TrySetWeight(v, w); err != nil {
		panic(err.Error())
	}
}

// TrySetWeight is SetWeight returning an error instead of panicking on
// a non-positive weight or an out-of-range node.
func (g *Graph) TrySetWeight(v NodeID, w Weight) error {
	if w <= 0 {
		return fmt.Errorf("cdag: node weight must be positive, got %d", w)
	}
	if v < 0 || int(v) >= len(g.weights) {
		return fmt.Errorf("cdag: node %d does not exist", v)
	}
	g.weights[v] = w
	return nil
}

// Name returns the display name of node v (may be empty).
func (g *Graph) Name(v NodeID) string { return g.names[v] }

// Parents returns the immediate predecessors H(v). The slice is owned
// by the graph and must not be mutated.
func (g *Graph) Parents(v NodeID) []NodeID { return g.parents[v] }

// Children returns the immediate successors of v. The slice is owned
// by the graph and must not be mutated.
func (g *Graph) Children(v NodeID) []NodeID { return g.children[v] }

// InDegree returns len(Parents(v)).
func (g *Graph) InDegree(v NodeID) int { return len(g.parents[v]) }

// OutDegree returns len(Children(v)).
func (g *Graph) OutDegree(v NodeID) int { return len(g.children[v]) }

// IsSource reports whether v has in-degree zero.
func (g *Graph) IsSource(v NodeID) bool { return len(g.parents[v]) == 0 }

// IsSink reports whether v has out-degree zero.
func (g *Graph) IsSink(v NodeID) bool { return len(g.children[v]) == 0 }

// Sources returns A(G), all nodes with in-degree zero, in ID order.
func (g *Graph) Sources() []NodeID {
	var out []NodeID
	for v := range g.weights {
		if len(g.parents[v]) == 0 {
			out = append(out, NodeID(v))
		}
	}
	return out
}

// Sinks returns Z(G), all nodes with out-degree zero, in ID order.
func (g *Graph) Sinks() []NodeID {
	var out []NodeID
	for v := range g.weights {
		if len(g.children[v]) == 0 {
			out = append(out, NodeID(v))
		}
	}
	return out
}

// SourceWeight returns the sum of weights over A(G).
func (g *Graph) SourceWeight() Weight {
	var s Weight
	for v := range g.weights {
		if len(g.parents[v]) == 0 {
			s += g.weights[v]
		}
	}
	return s
}

// SinkWeight returns the sum of weights over Z(G).
func (g *Graph) SinkWeight() Weight {
	var s Weight
	for v := range g.weights {
		if len(g.children[v]) == 0 {
			s += g.weights[v]
		}
	}
	return s
}

// TotalWeight returns the sum of all node weights.
func (g *Graph) TotalWeight() Weight {
	var s Weight
	for _, w := range g.weights {
		s += w
	}
	return s
}

// EdgeCount returns |E|.
func (g *Graph) EdgeCount() int {
	n := 0
	for _, ps := range g.parents {
		n += len(ps)
	}
	return n
}

// HasEdge reports whether (u, v) is an edge.
func (g *Graph) HasEdge(u, v NodeID) bool {
	for _, p := range g.parents[v] {
		if p == u {
			return true
		}
	}
	return false
}

// TopoOrder returns the nodes in a topological order. Because AddNode
// requires parents to pre-exist, insertion order is already
// topological; the method exists for clarity and for graphs
// reconstructed by other means.
func (g *Graph) TopoOrder() []NodeID {
	out := make([]NodeID, g.Len())
	for i := range out {
		out[i] = NodeID(i)
	}
	return out
}

// Validate checks structural invariants: positive weights, acyclicity,
// edge endpoints in range, and disjoint sources/sinks (the WRBPG
// assumes A(G) ∩ Z(G) = ∅, i.e. no isolated nodes).
func (g *Graph) Validate() error {
	n := g.Len()
	if n == 0 {
		return errors.New("cdag: empty graph")
	}
	for v := 0; v < n; v++ {
		if g.weights[v] <= 0 {
			return fmt.Errorf("cdag: node %d has non-positive weight %d", v, g.weights[v])
		}
		for _, p := range g.parents[v] {
			if p < 0 || int(p) >= n {
				return fmt.Errorf("cdag: node %d has out-of-range parent %d", v, p)
			}
			if p >= NodeID(v) {
				// Parents must precede children in ID order; this
				// guarantees acyclicity for builder-created graphs.
				return fmt.Errorf("cdag: node %d has parent %d with ID >= child: %w", v, p, ErrCycle)
			}
		}
		if len(g.parents[v]) == 0 && len(g.children[v]) == 0 {
			return fmt.Errorf("cdag: node %d is isolated (source and sink)", v)
		}
	}
	return nil
}

// MaxComputePressure returns max over non-source v of
// w_v + Σ_{p∈H(v)} w_p — the smallest budget for which a valid WRBPG
// schedule exists (Proposition 2.3).
func (g *Graph) MaxComputePressure() Weight {
	var m Weight
	for v := 0; v < g.Len(); v++ {
		if len(g.parents[v]) == 0 {
			continue
		}
		s := g.weights[v]
		for _, p := range g.parents[v] {
			s += g.weights[p]
		}
		if s > m {
			m = s
		}
	}
	return m
}

// IsTree reports whether every node has out-degree at most one and
// exactly one sink exists — i.e. the graph is an in-tree rooted at the
// sink (Definition 3.6 with the root as unique sink).
func (g *Graph) IsTree() bool {
	sinks := 0
	for v := 0; v < g.Len(); v++ {
		switch g.OutDegree(NodeID(v)) {
		case 0:
			sinks++
		case 1:
		default:
			return false
		}
	}
	return sinks == 1
}

// MaxInDegree returns the largest in-degree in the graph (the k of a
// k-ary tree).
func (g *Graph) MaxInDegree() int {
	m := 0
	for _, ps := range g.parents {
		if len(ps) > m {
			m = len(ps)
		}
	}
	return m
}

// Descendants returns the set of nodes reachable from v (excluding v).
func (g *Graph) Descendants(v NodeID) map[NodeID]bool {
	seen := map[NodeID]bool{}
	stack := append([]NodeID(nil), g.children[v]...)
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[u] {
			continue
		}
		seen[u] = true
		stack = append(stack, g.children[u]...)
	}
	return seen
}

// Ancestors returns pred(v): the set of nodes with a directed path to
// v (excluding v itself).
func (g *Graph) Ancestors(v NodeID) map[NodeID]bool {
	seen := map[NodeID]bool{}
	stack := append([]NodeID(nil), g.parents[v]...)
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[u] {
			continue
		}
		seen[u] = true
		stack = append(stack, g.parents[u]...)
	}
	return seen
}

// Prune returns a copy of g with the given nodes (and their incident
// edges) removed, together with the mapping old ID → new ID (None for
// removed nodes). Removing a node that still has children in the kept
// set is allowed only if those children are removed too; otherwise
// Prune returns an error, since the result would not be a valid CDAG
// of the same computation.
func (g *Graph) Prune(remove map[NodeID]bool) (*Graph, []NodeID, error) {
	for v := range remove {
		for _, c := range g.children[v] {
			if !remove[c] {
				return nil, nil, fmt.Errorf("cdag: cannot prune node %d: kept child %d depends on it", v, c)
			}
		}
	}
	out := &Graph{}
	mapping := make([]NodeID, g.Len())
	for v := 0; v < g.Len(); v++ {
		id := NodeID(v)
		if remove[id] {
			mapping[v] = None
			continue
		}
		ps := make([]NodeID, 0, len(g.parents[v]))
		for _, p := range g.parents[v] {
			ps = append(ps, mapping[p])
		}
		mapping[v] = out.AddNode(g.weights[v], g.names[v], ps...)
	}
	return out, mapping, nil
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	out := &Graph{}
	for v := 0; v < g.Len(); v++ {
		out.AddNode(g.weights[v], g.names[v], g.parents[v]...)
	}
	return out
}

// DOT renders the graph in Graphviz DOT syntax, for debugging and
// documentation.
func (g *Graph) DOT(title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=LR;\n", title)
	for v := 0; v < g.Len(); v++ {
		label := g.names[v]
		if label == "" {
			label = fmt.Sprintf("v%d", v)
		}
		fmt.Fprintf(&b, "  n%d [label=\"%s (w=%d)\"];\n", v, label, g.weights[v])
	}
	for v := 0; v < g.Len(); v++ {
		for _, c := range g.children[v] {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", v, c)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// SortedIDs returns the given set as a sorted slice, a convenience for
// deterministic iteration over node sets.
func SortedIDs(set map[NodeID]bool) []NodeID {
	out := make([]NodeID, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
