package cdag

import (
	"encoding/json"
	"fmt"
	"io"
)

// Graphs are deployment artifacts alongside schedules: the memory
// design, the schedule and the CDAG it was generated for travel
// together (see core.Manifest). This file provides a stable JSON
// interchange form.

// nodeJSON is the wire form of one node.
type nodeJSON struct {
	Weight  Weight   `json:"w"`
	Name    string   `json:"name,omitempty"`
	Parents []NodeID `json:"parents,omitempty"`
}

type graphJSON struct {
	Nodes []nodeJSON `json:"nodes"`
}

// MarshalJSON encodes the graph as a node list in topological
// (insertion) order.
func (g *Graph) MarshalJSON() ([]byte, error) {
	nodes := make([]nodeJSON, g.Len())
	for v := 0; v < g.Len(); v++ {
		id := NodeID(v)
		nodes[v] = nodeJSON{Weight: g.Weight(id), Name: g.Name(id), Parents: g.Parents(id)}
	}
	return json.Marshal(graphJSON{Nodes: nodes})
}

// UnmarshalJSON decodes a graph written by MarshalJSON, re-validating
// the builder invariants (positive weights, backward parent edges).
func (g *Graph) UnmarshalJSON(data []byte) error {
	var raw graphJSON
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	fresh := Graph{}
	for i, n := range raw.Nodes {
		if n.Weight <= 0 {
			return fmt.Errorf("cdag: node %d has non-positive weight %d", i, n.Weight)
		}
		for _, p := range n.Parents {
			if p < 0 || int(p) >= i {
				return fmt.Errorf("cdag: node %d has invalid parent %d", i, p)
			}
		}
		fresh.AddNode(n.Weight, n.Name, n.Parents...)
	}
	*g = fresh
	return nil
}

// WriteJSON streams the graph as indented JSON.
func (g *Graph) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(g)
}

// ReadJSON parses a graph written by WriteJSON.
func ReadJSON(r io.Reader) (*Graph, error) {
	var g Graph
	if err := json.NewDecoder(r).Decode(&g); err != nil {
		return nil, err
	}
	return &g, nil
}

// Equal reports whether two graphs have identical structure, weights
// and names.
func (g *Graph) Equal(o *Graph) bool {
	if g.Len() != o.Len() {
		return false
	}
	for v := 0; v < g.Len(); v++ {
		id := NodeID(v)
		if g.Weight(id) != o.Weight(id) || g.Name(id) != o.Name(id) {
			return false
		}
		gp, op := g.Parents(id), o.Parents(id)
		if len(gp) != len(op) {
			return false
		}
		for i := range gp {
			if gp[i] != op[i] {
				return false
			}
		}
	}
	return true
}
