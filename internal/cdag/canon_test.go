// Tests for the structural canonical form: isomorphic graphs (same
// dataflow, different node numbering) must canonicalize to identical
// graphs, the recorded permutation must actually map the original onto
// the canonical form, and the roster generator must produce valid
// graphs of the requested size.

package cdag

import (
	"encoding/json"
	"math/rand"
	"testing"
)

// permute relabels g by a random permutation that keeps insertion
// order topological (shuffles within, then re-inserts in a valid
// order): the result is isomorphic to g by construction. perm maps
// old IDs to new IDs.
func permute(t *testing.T, g *Graph, seed int64) *Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	// Random topological re-ordering: repeatedly pick a random node
	// whose parents are all placed.
	n := g.Len()
	placed := make([]bool, n)
	newID := make([]NodeID, n)
	var order []NodeID
	for len(order) < n {
		var ready []NodeID
		for v := 0; v < n; v++ {
			if placed[v] {
				continue
			}
			ok := true
			for _, p := range g.Parents(NodeID(v)) {
				if !placed[p] {
					ok = false
					break
				}
			}
			if ok {
				ready = append(ready, NodeID(v))
			}
		}
		pick := ready[rng.Intn(len(ready))]
		placed[pick] = true
		newID[pick] = NodeID(len(order))
		order = append(order, pick)
	}
	out := &Graph{}
	for _, old := range order {
		ps := make([]NodeID, 0, len(g.Parents(old)))
		for _, p := range g.Parents(old) {
			ps = append(ps, newID[p])
		}
		out.AddNode(g.Weight(old), "", ps...)
	}
	return out
}

func TestCanonicalIsomorphismInvariant(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		g := Random(100+seed, 25)
		cg, _ := Canonical(g)
		want, err := json.Marshal(cg)
		if err != nil {
			t.Fatal(err)
		}
		for p := int64(0); p < 4; p++ {
			iso := permute(t, g, seed*10+p)
			ci, _ := Canonical(iso)
			got, err := json.Marshal(ci)
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != string(want) {
				t.Fatalf("seed %d perm %d: isomorphic graphs canonicalized differently:\n%s\n%s",
					seed, p, got, want)
			}
		}
	}
}

// TestCanonicalPermIsFaithful: perm[orig] = canon really maps the
// original structure onto the canonical one — weights and edges agree
// under the relabeling.
func TestCanonicalPermIsFaithful(t *testing.T) {
	g := Random(7, 30)
	cg, perm := Canonical(g)
	if len(perm) != g.Len() || cg.Len() != g.Len() {
		t.Fatalf("size mismatch: perm %d canon %d orig %d", len(perm), cg.Len(), g.Len())
	}
	for v := 0; v < g.Len(); v++ {
		id := NodeID(v)
		if g.Weight(id) != cg.Weight(perm[id]) {
			t.Fatalf("node %d: weight %d became %d", v, g.Weight(id), cg.Weight(perm[id]))
		}
		want := map[NodeID]bool{}
		for _, p := range g.Parents(id) {
			want[perm[p]] = true
		}
		got := cg.Parents(perm[id])
		if len(got) != len(want) {
			t.Fatalf("node %d: parent count %d became %d", v, len(want), len(got))
		}
		for _, p := range got {
			if !want[p] {
				t.Fatalf("node %d: unexpected canonical parent %d", v, p)
			}
		}
	}
	inv := InversePerm(perm)
	for v := range perm {
		if inv[perm[v]] != NodeID(v) {
			t.Fatalf("InversePerm broken at %d", v)
		}
	}
}

func TestCanonicalIdempotent(t *testing.T) {
	g := Random(11, 20)
	c1, _ := Canonical(g)
	c2, perm := Canonical(c1)
	if !c1.Equal(c2) {
		t.Fatal("canonicalizing a canonical graph changed it")
	}
	for v, p := range perm {
		if int(p) != v {
			t.Fatalf("re-canonicalization permuted: perm[%d]=%d", v, p)
		}
	}
}

func TestRandomGraphsValid(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		n := 15 + int(seed)*2
		g := Random(seed, n)
		if g.Len() != n {
			t.Fatalf("seed %d: %d nodes, want %d", seed, g.Len(), n)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for v := 0; v < n; v++ {
			if g.Weight(NodeID(v)) < 1 {
				t.Fatalf("seed %d: node %d has weight %d", seed, v, g.Weight(NodeID(v)))
			}
		}
		// Determinism: same seed, same graph.
		if !g.Equal(Random(seed, n)) {
			t.Fatalf("seed %d: Random not deterministic", seed)
		}
	}
}
