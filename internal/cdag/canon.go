// Structural canonicalization: relabel a graph so that its node order
// depends only on weights and edge structure, never on display names
// or the order a client happened to list the nodes in. The serving
// layer canonicalizes every family:"cdag" request before deriving its
// content-addressed cache key, so isomorphic resubmissions of the same
// dataflow — exported from different tools, with different node
// orderings — dedup onto one cache entry and one cluster-ring owner.

package cdag

import "sort"

// canonMix is a 64-bit avalanche step shared by the refinement rounds
// (same constants as the memstate memo-key hash).
func canonMix(h uint64) uint64 {
	h ^= h >> 33
	h *= 0x9E3779B97F4A7C15
	h ^= h >> 29
	h *= 0xD6E8FEB86659FD93
	return h ^ h>>32
}

// Canonical returns a relabeled copy of g plus the permutation
// perm[orig] = canonical ID. The relabeling is a Weisfeiler–Lehman
// style refinement: every node starts from a hash of its weight,
// degree signature and longest-path depth, then repeatedly absorbs the
// multiset of its parents' and children's hashes until the partition
// stops refining. Nodes are ordered by (depth, refined hash), which
// keeps parents before children, and the canonical graph stores parent
// lists sorted — so two isomorphic graphs yield byte-identical
// digests. Nodes the refinement cannot distinguish are automorphic in
// practice (or an astronomically unlikely 64-bit collision) and are
// interchangeable, so any tie order yields the same canonical content.
// g must be valid; Canonical panics on malformed parent IDs.
func Canonical(g *Graph) (*Graph, []NodeID) {
	n := g.Len()
	depth := make([]int, n)
	h := make([]uint64, n)
	for v := 0; v < n; v++ {
		d := 0
		for _, p := range g.parents[v] {
			if depth[p]+1 > d {
				d = depth[p] + 1
			}
		}
		depth[v] = d
		seed := canonMix(uint64(g.weights[v]))
		seed = canonMix(seed ^ uint64(len(g.parents[v]))<<32 ^ uint64(len(g.children[v])))
		h[v] = canonMix(seed ^ uint64(d)*0x165667B19E3779F9)
	}
	distinct := func() int {
		seen := make(map[uint64]struct{}, n)
		for _, x := range h {
			seen[x] = struct{}{}
		}
		return len(seen)
	}
	next := make([]uint64, n)
	for prev := distinct(); prev < n; {
		for v := 0; v < n; v++ {
			// Commutative (sum, xor) folds keep the neighbour multiset
			// hash independent of adjacency-list order.
			var psum, pxor, csum, cxor uint64
			for _, p := range g.parents[v] {
				q := canonMix(h[p])
				psum += q
				pxor ^= q
			}
			for _, c := range g.children[v] {
				q := canonMix(h[c] ^ 0xA5A5A5A55A5A5A5A)
				csum += q
				cxor ^= q
			}
			next[v] = canonMix((h[v] ^ canonMix(psum^cxor)) + canonMix(csum^pxor))
		}
		copy(h, next)
		cur := distinct()
		if cur <= prev {
			break // refinement converged (or collided); stop
		}
		prev = cur
	}
	order := make([]NodeID, n)
	for v := range order {
		order[v] = NodeID(v)
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if depth[a] != depth[b] {
			return depth[a] < depth[b]
		}
		if h[a] != h[b] {
			return h[a] < h[b]
		}
		return a < b
	})
	perm := make([]NodeID, n)
	for rank, v := range order {
		perm[v] = NodeID(rank)
	}
	out := &Graph{}
	for _, v := range order {
		ps := make([]NodeID, len(g.parents[v]))
		for i, p := range g.parents[v] {
			ps[i] = perm[p]
		}
		sort.Slice(ps, func(i, j int) bool { return ps[i] < ps[j] })
		out.AddNode(g.weights[v], g.names[v], ps...)
	}
	return out, perm
}

// InversePerm returns the inverse of a permutation produced by
// Canonical: inv[canonical] = original. Serving layers use it to remap
// cached canonical-space move lists back into the requester's node
// numbering.
func InversePerm(perm []NodeID) []NodeID {
	inv := make([]NodeID, len(perm))
	for orig, canon := range perm {
		inv[canon] = NodeID(orig)
	}
	return inv
}
