package synth

import (
	"strings"
	"testing"

	"wrbpg/internal/cdag"
)

// table1Capacities are the power-of-two sizes synthesized in
// Section 5.3 (Table 1, last column).
var table1Capacities = []cdag.Weight{256, 512, 2048, 2048, 4096, 8192, 8192, 16384}

func TestSynthesizeTable1Capacities(t *testing.T) {
	p := TSMC65()
	for _, c := range table1Capacities {
		m, err := Synthesize(c, 16, p)
		if err != nil {
			t.Fatalf("Synthesize(%d): %v", c, err)
		}
		if cdag.Weight(m.Rows*m.Cols) != c {
			t.Errorf("%d bits: %d×%d does not cover capacity", c, m.Rows, m.Cols)
		}
		if m.Cols != 16*m.Mux {
			t.Errorf("%d bits: cols %d != word × mux %d", c, m.Cols, 16*m.Mux)
		}
		if m.AreaLambda2 <= 0 || m.LeakageMW <= 0 || m.ReadPowerMW <= 0 || m.WritePowerMW <= m.ReadPowerMW*0.99 {
			t.Errorf("%d bits: implausible metrics %+v", c, m)
		}
	}
}

func TestMonotoneInCapacity(t *testing.T) {
	p := TSMC65()
	var prev Macro
	for i, c := range []cdag.Weight{256, 512, 1024, 2048, 4096, 8192, 16384, 32768} {
		m, err := Synthesize(c, 16, p)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 {
			if m.AreaLambda2 <= prev.AreaLambda2 {
				t.Errorf("area not increasing at %d bits", c)
			}
			if m.LeakageMW <= prev.LeakageMW {
				t.Errorf("leakage not increasing at %d bits", c)
			}
			if m.ReadPowerMW <= prev.ReadPowerMW {
				t.Errorf("read power not increasing at %d bits", c)
			}
			if m.ReadGBs > prev.ReadGBs {
				t.Errorf("bandwidth should not increase at %d bits", c)
			}
		}
		prev = m
	}
}

// TestNearlyConstantBandwidth mirrors Figures 7e/7f: across the
// Table 1 capacities peak bandwidth varies by well under 20%.
func TestNearlyConstantBandwidth(t *testing.T) {
	p := TSMC65()
	min, max := 1e18, 0.0
	for _, c := range table1Capacities {
		m, err := Synthesize(c, 16, p)
		if err != nil {
			t.Fatal(err)
		}
		if m.ReadGBs < min {
			min = m.ReadGBs
		}
		if m.ReadGBs > max {
			max = m.ReadGBs
		}
	}
	if (max-min)/max > 0.2 {
		t.Errorf("bandwidth varies too much: [%f, %f]", min, max)
	}
}

// TestHeadlineRatios checks the Section 5.3 comparisons our model
// must preserve: a 32× capacity gap (256 vs 8192) yields a large area
// and leakage reduction.
func TestHeadlineRatios(t *testing.T) {
	p := TSMC65()
	small, err := Synthesize(256, 16, p)
	if err != nil {
		t.Fatal(err)
	}
	big, err := Synthesize(8192, 16, p)
	if err != nil {
		t.Fatal(err)
	}
	areaRed := 100 * (big.AreaLambda2 - small.AreaLambda2) / big.AreaLambda2
	if areaRed < 80 {
		t.Errorf("area reduction 256 vs 8192 = %.1f%%, want > 80%% (paper: 85.7%%)", areaRed)
	}
	leakRed := 100 * (big.LeakageMW - small.LeakageMW) / big.LeakageMW
	if leakRed < 70 {
		t.Errorf("leakage reduction = %.1f%%, want > 70%%", leakRed)
	}
}

func TestSquareishArrays(t *testing.T) {
	p := TSMC65()
	for _, c := range []cdag.Weight{1024, 4096, 16384} {
		m, err := Synthesize(c, 16, p)
		if err != nil {
			t.Fatal(err)
		}
		ratio := float64(m.Rows) / float64(m.Cols)
		if ratio < 1 {
			ratio = 1 / ratio
		}
		if ratio > 2.01 {
			t.Errorf("%d bits: aspect %d×%d too skewed", c, m.Rows, m.Cols)
		}
	}
}

func TestSynthesizeErrors(t *testing.T) {
	p := TSMC65()
	if _, err := Synthesize(0, 16, p); err == nil {
		t.Error("zero capacity should fail")
	}
	if _, err := Synthesize(100, 16, p); err == nil {
		t.Error("non-word-multiple capacity should fail")
	}
	if _, err := Synthesize(256, 0, p); err == nil {
		t.Error("zero word size should fail")
	}
	if _, err := Synthesize(-256, 16, p); err == nil {
		t.Error("negative capacity should fail")
	}
}

func TestTinyCapacity(t *testing.T) {
	p := TSMC65()
	m, err := Synthesize(16, 16, p)
	if err != nil {
		t.Fatalf("single word should synthesize: %v", err)
	}
	if m.Rows != 1 || m.Cols != 16 {
		t.Errorf("16 bits: %d×%d, want 1×16", m.Rows, m.Cols)
	}
}

func TestLayoutRendering(t *testing.T) {
	p := TSMC65()
	small, _ := Synthesize(256, 16, p)
	big, _ := Synthesize(16384, 16, p)
	ls := small.Layout(8)
	lb := big.Layout(8)
	if !strings.Contains(ls, "█") || !strings.Contains(lb, "█") {
		t.Fatal("layouts should render blocks")
	}
	if len(lb) <= len(ls) {
		t.Error("bigger macro should render a bigger footprint at equal scale")
	}
	if small.Layout(0) == "" {
		t.Error("zero scale should fall back to a default")
	}
}

func TestString(t *testing.T) {
	p := TSMC65()
	m, _ := Synthesize(2048, 16, p)
	s := m.String()
	if !strings.Contains(s, "2048") || !strings.Contains(s, "mW") {
		t.Errorf("String() = %q", s)
	}
}

// TestCalibrationMagnitudes keeps the model in the paper's Figure 7
// ballpark: 16 Kb lands near 40 kλ² area and ~24 mW leakage.
func TestCalibrationMagnitudes(t *testing.T) {
	p := TSMC65()
	m, err := Synthesize(16384, 16, p)
	if err != nil {
		t.Fatal(err)
	}
	if m.AreaLambda2 < 30000 || m.AreaLambda2 > 50000 {
		t.Errorf("16Kb area = %.0f, want ≈ 40000", m.AreaLambda2)
	}
	if m.LeakageMW < 18 || m.LeakageMW > 30 {
		t.Errorf("16Kb leakage = %.1f mW, want ≈ 24", m.LeakageMW)
	}
	if m.ReadPowerMW < 30 || m.ReadPowerMW > 45 {
		t.Errorf("16Kb read power = %.1f mW, want ≈ 38", m.ReadPowerMW)
	}
	if m.ReadGBs < 40 || m.ReadGBs > 55 {
		t.Errorf("16Kb read bandwidth = %.1f GB/s, want ≈ 45", m.ReadGBs)
	}
}
