// Package synth models the physical synthesis step of Section 5.3:
// turning a power-of-two fast-memory capacity into an SRAM macro with
// area, leakage, read/write power, peak bandwidth and a rectangular
// layout.
//
// The paper synthesizes its memories with AMC, an open-source
// asynchronous memory compiler, on the TSMC 65 nm node. Neither the
// compiler flow nor the PDK is available here, so this package
// substitutes an analytical compiler model with the canonical SRAM
// structure: a 6T bitcell array organised as rows × columns with a
// column mux chosen for squareness, plus row periphery (wordline
// drivers, decoder) and column periphery (sense amplifiers, write
// drivers, precharge). Area scales with the bitcell count plus
// per-row/per-column periphery; leakage scales with device count;
// dynamic power with switched bitline/wordline capacitance; and
// bandwidth is nearly flat because AMC's fixed gate sizing keeps
// cycle time roughly constant across these capacities (Section 5.3).
//
// The process constants are calibrated so the eight Table 1
// capacities land on the magnitudes of Figure 7 — what matters for
// the reproduction is the *relative* area/power between capacities,
// which any monotone array-plus-periphery model preserves.
package synth

import (
	"fmt"
	"math"

	"wrbpg/internal/cdag"
)

// Process holds the technology constants of the model.
type Process struct {
	// Name labels the node, e.g. "TSMC65-AMC-model".
	Name string
	// CellArea is the effective per-bit area (λ², bitcell plus its
	// share of array overhead).
	CellArea float64
	// RowPeriphArea and ColPeriphArea are per-row / per-column
	// periphery areas (λ²).
	RowPeriphArea, ColPeriphArea float64
	// FixedArea covers control logic independent of capacity (λ²).
	FixedArea float64
	// CellWidth and CellHeight give the bitcell footprint (λ) for
	// layout rectangles; RowPeriphWidth / ColPeriphHeight extend the
	// array on two sides.
	CellWidth, CellHeight           float64
	RowPeriphWidth, ColPeriphHeight float64
	// LeakPerBit is bitcell leakage (mW); LeakPeriph per row+column
	// unit (mW); LeakFixed constant (mW).
	LeakPerBit, LeakPeriph, LeakFixed float64
	// ReadCoeff scales read power with √bits (bitline+wordline
	// capacitance of a square array); WordCoeff with the word width
	// (sense amps firing per access); DynFixed is constant (mW).
	ReadCoeff, WordCoeff, DynFixed float64
	// WriteFactor is the write/read power ratio (> 1: full-swing
	// bitline drive).
	WriteFactor float64
	// BaseGHz is the access rate of the smallest macro (10⁹
	// accesses/s); FreqSlope is the per-doubling slowdown.
	BaseGHz, FreqSlope float64
	// MaxMux bounds the column mux factor.
	MaxMux int
}

// TSMC65 returns the calibrated default process.
func TSMC65() Process {
	return Process{
		Name:            "TSMC65-AMC-model",
		CellArea:        2.2,
		RowPeriphArea:   8,
		ColPeriphArea:   12,
		FixedArea:       500,
		CellWidth:       1.6,
		CellHeight:      1.4,
		RowPeriphWidth:  24,
		ColPeriphHeight: 32,
		LeakPerBit:      1.35e-3,
		LeakPeriph:      4.0e-3,
		LeakFixed:       0.4,
		ReadCoeff:       0.25,
		WordCoeff:       0.30,
		DynFixed:        2.0,
		WriteFactor:     1.06,
		BaseGHz:         25.0,
		FreqSlope:       0.45,
		MaxMux:          16,
	}
}

// Macro is a synthesized SRAM instance.
type Macro struct {
	CapacityBits cdag.Weight
	WordBits     int
	// Rows × Cols is the bitcell array organisation; Mux is the
	// column multiplex factor (Cols = WordBits × Mux).
	Rows, Cols, Mux int
	// AreaLambda2 is the macro area in λ².
	AreaLambda2 float64
	// WidthLambda × HeightLambda is the layout rectangle.
	WidthLambda, HeightLambda float64
	// LeakageMW is static power; ReadPowerMW / WritePowerMW dynamic
	// power at peak rate.
	LeakageMW, ReadPowerMW, WritePowerMW float64
	// ReadGBs / WriteGBs are peak bandwidths.
	ReadGBs, WriteGBs float64
}

// Synthesize compiles a capacity (bits, must be a positive multiple
// of the word size) into a Macro under the process model.
func Synthesize(capacityBits cdag.Weight, wordBits int, p Process) (Macro, error) {
	if wordBits <= 0 {
		return Macro{}, fmt.Errorf("synth: word size must be positive, got %d", wordBits)
	}
	if capacityBits <= 0 || capacityBits%cdag.Weight(wordBits) != 0 {
		return Macro{}, fmt.Errorf("synth: capacity %d is not a positive multiple of the %d-bit word", capacityBits, wordBits)
	}
	bits := float64(capacityBits)

	// Pick the column mux (power of two) giving the squarest array
	// with at least one row.
	bestMux, bestRows, bestCols := 1, 0, 0
	bestRatio := math.Inf(1)
	for mux := 1; mux <= p.MaxMux; mux *= 2 {
		cols := wordBits * mux
		if cols > int(capacityBits) {
			break
		}
		if int(capacityBits)%cols != 0 {
			continue
		}
		rows := int(capacityBits) / cols
		ratio := float64(rows) / float64(cols)
		if ratio < 1 {
			ratio = 1 / ratio
		}
		if ratio < bestRatio {
			bestRatio, bestMux, bestRows, bestCols = ratio, mux, rows, cols
		}
	}
	if bestRows == 0 {
		return Macro{}, fmt.Errorf("synth: capacity %d too small to organise with %d-bit words", capacityBits, wordBits)
	}

	area := p.CellArea*bits + p.RowPeriphArea*float64(bestRows) + p.ColPeriphArea*float64(bestCols) + p.FixedArea
	width := p.CellWidth*float64(bestCols) + p.RowPeriphWidth
	height := p.CellHeight*float64(bestRows) + p.ColPeriphHeight
	leak := p.LeakPerBit*bits + p.LeakPeriph*float64(bestRows+bestCols) + p.LeakFixed
	read := p.ReadCoeff*math.Sqrt(bits) + p.WordCoeff*float64(wordBits) + p.DynFixed
	write := read * p.WriteFactor
	doublings := math.Log2(bits / 256)
	if doublings < 0 {
		doublings = 0
	}
	ghz := p.BaseGHz - p.FreqSlope*doublings
	if ghz < 1 {
		ghz = 1
	}
	bw := ghz * float64(wordBits) / 8 // GB/s at one access per cycle

	return Macro{
		CapacityBits: capacityBits,
		WordBits:     wordBits,
		Rows:         bestRows,
		Cols:         bestCols,
		Mux:          bestMux,
		AreaLambda2:  area,
		WidthLambda:  width,
		HeightLambda: height,
		LeakageMW:    leak,
		ReadPowerMW:  read,
		WritePowerMW: write,
		// Writes are marginally slower: full bitline swing.
		ReadGBs:  bw,
		WriteGBs: bw * 0.98,
	}, nil
}

func (m Macro) String() string {
	return fmt.Sprintf("SRAM %d bits (%d×%d, mux %d): %.0f λ², %.2f mW leak, %.1f/%.1f mW r/w, %.1f GB/s",
		m.CapacityBits, m.Rows, m.Cols, m.Mux, m.AreaLambda2, m.LeakageMW, m.ReadPowerMW, m.WritePowerMW, m.ReadGBs)
}

// Layout renders the macro as an ASCII rectangle at the given scale
// (λ per character column; rows count double to match terminal cell
// aspect). Using one scale across macros makes the Figure 8 footprint
// comparison visual.
func (m Macro) Layout(lambdaPerChar float64) string {
	if lambdaPerChar <= 0 {
		lambdaPerChar = 16
	}
	w := int(m.WidthLambda / lambdaPerChar)
	h := int(m.HeightLambda / (2 * lambdaPerChar))
	if w < 2 {
		w = 2
	}
	if h < 1 {
		h = 1
	}
	out := ""
	for i := 0; i < h; i++ {
		for j := 0; j < w; j++ {
			out += "█"
		}
		out += "\n"
	}
	return out
}
