package baseline

import (
	"testing"

	"wrbpg/internal/cdag"
	"wrbpg/internal/core"
	"wrbpg/internal/wcfg"
)

// TestAscendingVariantValid: the no-alternation ablation produces
// valid schedules across budgets.
func TestAscendingVariantValid(t *testing.T) {
	g := dwtGraph(t, 32, 5, wcfg.Equal(16))
	minB := core.MinExistenceBudget(g.G)
	for b := minB; b <= minB+320; b += 64 {
		sched, err := LayerByLayerAscending(g.G, g.Layers, b)
		if err != nil {
			t.Fatalf("b=%d: %v", b, err)
		}
		if _, err := core.Simulate(g.G, b, sched); err != nil {
			t.Fatalf("b=%d: %v", b, err)
		}
	}
}

// TestAlternationHelpsSomewhere: on DWT(256,8) at a mid budget the
// alternating order never does worse, and the two variants genuinely
// differ somewhere in the sweep (otherwise the ablation is vacuous).
func TestAlternationHelpsSomewhere(t *testing.T) {
	g := dwtGraph(t, 256, 8, wcfg.Equal(16))
	differs := false
	for _, b := range []cdag.Weight{512, 1024, 2048, 3072} {
		alt, err := LayerByLayer(g.G, g.Layers, b)
		if err != nil {
			t.Fatal(err)
		}
		asc, err := LayerByLayerAscending(g.G, g.Layers, b)
		if err != nil {
			t.Fatal(err)
		}
		sAlt, err := core.Simulate(g.G, b, alt)
		if err != nil {
			t.Fatal(err)
		}
		sAsc, err := core.Simulate(g.G, b, asc)
		if err != nil {
			t.Fatal(err)
		}
		if sAlt.Cost != sAsc.Cost {
			differs = true
			if sAlt.Cost > sAsc.Cost {
				t.Logf("b=%d: alternation worse (%d vs %d)", b, sAlt.Cost, sAsc.Cost)
			}
		}
	}
	if !differs {
		t.Error("alternation and ascending orders never differed; ablation is vacuous")
	}
}

// TestRunErrorsOnMissingParents is impossible through the public API
// (orders come from layers), but an over-tight budget mid-run must
// surface as an error, not a panic.
func TestEvictionDeadlock(t *testing.T) {
	// A node with many heavy parents and a budget that admits the
	// graph per Prop 2.3 but pins everything during its compute: make
	// budget exactly the existence bound and verify success (the
	// engine must evict precisely down to the pinned set).
	g := &cdag.Graph{}
	var ps []cdag.NodeID
	for i := 0; i < 4; i++ {
		ps = append(ps, g.AddNode(3, "p"))
	}
	g.AddNode(2, "out", ps...)
	b := core.MinExistenceBudget(g) // 14
	sched, err := Greedy(g, b)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := core.Simulate(g, b, sched)
	if err != nil {
		t.Fatal(err)
	}
	if stats.PeakRedWeight != b {
		t.Errorf("peak %d != existence bound %d", stats.PeakRedWeight, b)
	}
}
