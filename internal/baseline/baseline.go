// Package baseline implements the comparison schedulers of
// Section 5.1: the layer-by-layer heuristic used as the DWT upper
// bound, and a greedy topological scheduler that realizes the
// constructive direction of Proposition 2.3 on arbitrary CDAGs.
//
// Both process nodes in a fixed order, loading missing parents on
// demand and spilling resident values in first-in-first-out order
// when the weighted budget would be exceeded. The layer-by-layer
// order traverses layers S_2 … S_{d+1}, alternating direction each
// layer — ascending index order, then descending — which retains
// recently computed values across adjacent layers.
package baseline

import (
	"fmt"

	"wrbpg/internal/cdag"
	"wrbpg/internal/core"
)

// engine executes a fixed compute order under FIFO spilling.
type engine struct {
	g         *cdag.Graph
	st        *core.State
	sched     core.Schedule
	fifo      []cdag.NodeID // resident nodes, oldest first
	remaining []int         // children left to compute per node
}

func newEngine(g *cdag.Graph, budget cdag.Weight) *engine {
	e := &engine{g: g, st: core.NewState(g, budget), remaining: make([]int, g.Len())}
	for v := 0; v < g.Len(); v++ {
		e.remaining[v] = g.OutDegree(cdag.NodeID(v))
	}
	return e
}

func (e *engine) apply(m core.Move) error {
	if _, err := e.st.Apply(m); err != nil {
		return err
	}
	e.sched = append(e.sched, m)
	return nil
}

// dropFromFIFO removes v from the residency queue.
func (e *engine) dropFromFIFO(v cdag.NodeID) {
	for i, u := range e.fifo {
		if u == v {
			e.fifo = append(e.fifo[:i], e.fifo[i+1:]...)
			return
		}
	}
}

// evictOne spills the oldest resident node not in pinned. A spilled
// node that is still needed (remaining children, or an unstored sink)
// is written to slow memory first; otherwise its red pebble is simply
// deleted.
func (e *engine) evictOne(pinned map[cdag.NodeID]bool) error {
	for i, v := range e.fifo {
		if pinned[v] {
			continue
		}
		needsStore := e.remaining[v] > 0 || e.g.IsSink(v)
		if needsStore && !e.st.Label(v).HasBlue() {
			if err := e.apply(core.Move{Kind: core.M2, Node: v}); err != nil {
				return err
			}
		}
		if err := e.apply(core.Move{Kind: core.M4, Node: v}); err != nil {
			return err
		}
		e.fifo = append(e.fifo[:i], e.fifo[i+1:]...)
		return nil
	}
	return fmt.Errorf("baseline: cannot evict: all %d resident nodes pinned (budget too small)", len(e.fifo))
}

// makeRoom evicts until w more red weight fits.
func (e *engine) makeRoom(w cdag.Weight, pinned map[cdag.NodeID]bool) error {
	for e.st.RedWeight()+w > e.st.Budget() {
		if err := e.evictOne(pinned); err != nil {
			return err
		}
	}
	return nil
}

// compute brings v's parents into fast memory (FIFO-spilling as
// needed), computes v, releases finished parents, and immediately
// stores v if it is a sink.
func (e *engine) compute(v cdag.NodeID) error {
	parents := e.g.Parents(v)
	pinned := map[cdag.NodeID]bool{}
	for _, p := range parents {
		pinned[p] = true
	}
	for _, p := range parents {
		if e.st.Label(p).HasRed() {
			continue
		}
		if err := e.makeRoom(e.g.Weight(p), pinned); err != nil {
			return err
		}
		if err := e.apply(core.Move{Kind: core.M1, Node: p}); err != nil {
			return err
		}
		e.fifo = append(e.fifo, p)
	}
	if err := e.makeRoom(e.g.Weight(v), pinned); err != nil {
		return err
	}
	if err := e.apply(core.Move{Kind: core.M3, Node: v}); err != nil {
		return err
	}
	e.fifo = append(e.fifo, v)
	// Account the use of each parent; fully consumed values leave
	// fast memory (outputs were stored when computed or when evicted).
	for _, p := range parents {
		e.remaining[p]--
		if e.remaining[p] == 0 {
			if e.g.IsSink(p) && !e.st.Label(p).HasBlue() {
				if err := e.apply(core.Move{Kind: core.M2, Node: p}); err != nil {
					return err
				}
			}
			if err := e.apply(core.Move{Kind: core.M4, Node: p}); err != nil {
				return err
			}
			e.dropFromFIFO(p)
		}
	}
	if e.g.IsSink(v) {
		if err := e.apply(core.Move{Kind: core.M2, Node: v}); err != nil {
			return err
		}
		if err := e.apply(core.Move{Kind: core.M4, Node: v}); err != nil {
			return err
		}
		e.dropFromFIFO(v)
	}
	return nil
}

// run executes the order and returns the schedule.
func run(g *cdag.Graph, budget cdag.Weight, order []cdag.NodeID) (core.Schedule, error) {
	if !core.ScheduleExists(g, budget) {
		return nil, fmt.Errorf("baseline: no valid schedule exists under budget %d (existence bound %d)", budget, core.MinExistenceBudget(g))
	}
	e := newEngine(g, budget)
	for _, v := range order {
		if err := e.compute(v); err != nil {
			return nil, err
		}
	}
	// Drop any still-resident inputs (nodes never computed).
	for len(e.fifo) > 0 {
		v := e.fifo[0]
		if err := e.apply(core.Move{Kind: core.M4, Node: v}); err != nil {
			return nil, err
		}
		e.fifo = e.fifo[1:]
	}
	return e.sched, nil
}

// LayerByLayerOrder returns the compute order of the Section 5.1
// baseline for a layered graph: layers[1:] in sequence, alternating
// ascending and descending index order.
func LayerByLayerOrder(layers [][]cdag.NodeID) []cdag.NodeID {
	var order []cdag.NodeID
	for i := 1; i < len(layers); i++ {
		l := layers[i]
		if i%2 == 1 { // S_2, S_4, …: ascending
			order = append(order, l...)
		} else { // S_3, S_5, …: descending
			for j := len(l) - 1; j >= 0; j-- {
				order = append(order, l[j])
			}
		}
	}
	return order
}

// LayerByLayer schedules a layered graph (layers[0] must be the input
// layer) under the FIFO-spilling layer-by-layer heuristic.
func LayerByLayer(g *cdag.Graph, layers [][]cdag.NodeID, budget cdag.Weight) (core.Schedule, error) {
	return run(g, budget, LayerByLayerOrder(layers))
}

// LayerByLayerAscending is the ablation variant without the
// alternating-direction optimization: every layer is traversed in
// ascending index order. Section 5.1 motivates alternation as a way
// to retain recently computed values across adjacent layers; the
// ablation benchmark quantifies the difference.
func LayerByLayerAscending(g *cdag.Graph, layers [][]cdag.NodeID, budget cdag.Weight) (core.Schedule, error) {
	var order []cdag.NodeID
	for i := 1; i < len(layers); i++ {
		order = append(order, layers[i]...)
	}
	return run(g, budget, order)
}

// Greedy schedules an arbitrary CDAG by computing non-source nodes in
// topological (ID) order with FIFO spilling — the constructive proof
// of Proposition 2.3: it succeeds for every budget at or above the
// existence bound.
func Greedy(g *cdag.Graph, budget cdag.Weight) (core.Schedule, error) {
	var order []cdag.NodeID
	for v := 0; v < g.Len(); v++ {
		if !g.IsSource(cdag.NodeID(v)) {
			order = append(order, cdag.NodeID(v))
		}
	}
	return run(g, budget, order)
}

// Cost simulates the layer-by-layer schedule and returns its weighted
// I/O, a convenience for sweeps.
func Cost(g *cdag.Graph, layers [][]cdag.NodeID, budget cdag.Weight) (cdag.Weight, error) {
	sched, err := LayerByLayer(g, layers, budget)
	if err != nil {
		return 0, err
	}
	stats, err := core.Simulate(g, budget, sched)
	if err != nil {
		return 0, err
	}
	return stats.Cost, nil
}

// MinMemory returns the smallest budget (on multiples of step) at
// which the layer-by-layer cost equals the algorithmic lower bound.
// The heuristic's cost is not guaranteed monotone in the budget, so
// the search scans linearly from the existence bound.
func MinMemory(g *cdag.Graph, layers [][]cdag.NodeID, step cdag.Weight) (cdag.Weight, error) {
	if step <= 0 {
		step = 1
	}
	lb := core.LowerBound(g)
	b := core.MinExistenceBudget(g)
	if r := b % step; r != 0 {
		b += step - r
	}
	limit := g.TotalWeight() + step
	for ; b <= limit; b += step {
		c, err := Cost(g, layers, b)
		if err != nil {
			return 0, err
		}
		if c == lb {
			return b, nil
		}
	}
	return 0, fmt.Errorf("baseline: lower bound %d not reached up to budget %d", lb, limit)
}
