package baseline

import (
	"testing"

	"wrbpg/internal/cdag"
	"wrbpg/internal/core"
	"wrbpg/internal/dwt"
	"wrbpg/internal/mvm"
	"wrbpg/internal/wcfg"
)

func dwtGraph(t *testing.T, n, d int, cfg wcfg.Config) *dwt.Graph {
	t.Helper()
	g, err := dwt.Build(n, d, dwt.ConfigWeights(cfg))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestLayerByLayerValid: schedules are rule-abiding across budgets
// and configurations.
func TestLayerByLayerValid(t *testing.T) {
	for _, cfg := range []wcfg.Config{wcfg.Equal(16), wcfg.DoubleAccumulator(16)} {
		for _, nd := range []struct{ n, d int }{{4, 1}, {8, 3}, {16, 4}, {32, 5}} {
			g := dwtGraph(t, nd.n, nd.d, cfg)
			minB := core.MinExistenceBudget(g.G)
			for b := minB; b <= minB+cdag.Weight(20*16); b += 64 {
				sched, err := LayerByLayer(g.G, g.Layers, b)
				if err != nil {
					t.Fatalf("%s DWT(%d,%d) b=%d: %v", cfg.Name, nd.n, nd.d, b, err)
				}
				stats, err := core.Simulate(g.G, b, sched)
				if err != nil {
					t.Fatalf("%s DWT(%d,%d) b=%d: %v", cfg.Name, nd.n, nd.d, b, err)
				}
				if stats.PeakRedWeight > b {
					t.Fatalf("peak %d > budget %d", stats.PeakRedWeight, b)
				}
			}
		}
	}
}

// TestNeverBeatsOptimum: the heuristic upper-bounds the DP optimum at
// every budget, and the gap closes at large budgets.
func TestNeverBeatsOptimum(t *testing.T) {
	for _, cfg := range []wcfg.Config{wcfg.Equal(16), wcfg.DoubleAccumulator(16)} {
		g := dwtGraph(t, 32, 5, cfg)
		s, err := dwt.NewScheduler(g)
		if err != nil {
			t.Fatal(err)
		}
		minB := core.MinExistenceBudget(g.G)
		for b := minB; b <= g.G.TotalWeight(); b += 128 {
			lbl, err := Cost(g.G, g.Layers, b)
			if err != nil {
				t.Fatal(err)
			}
			if opt := s.MinCost(b); lbl < opt {
				t.Fatalf("%s b=%d: layer-by-layer %d beat the optimum %d", cfg.Name, b, lbl, opt)
			}
		}
	}
}

// TestConvergesToLowerBound: with the whole graph resident the
// heuristic performs only compulsory I/O.
func TestConvergesToLowerBound(t *testing.T) {
	g := dwtGraph(t, 16, 4, wcfg.Equal(16))
	got, err := Cost(g.G, g.Layers, g.G.TotalWeight())
	if err != nil {
		t.Fatal(err)
	}
	if want := core.LowerBound(g.G); got != want {
		t.Errorf("cost at full residency = %d, want LB %d", got, want)
	}
}

// TestTable1BaselineAnchors pins the layer-by-layer minimum memory
// for DWT(256,8). The paper reports 445 words (Equal) and 636 (DA);
// its FIFO-spill discipline is underspecified, and our implementation
// (lazy parent loads, eager release of fully consumed values) is
// stronger, reaching the lower bound at 131 / 260 words. The
// comparison the evaluation rests on — the optimum (10 / 18 words)
// undercutting layer-by-layer by an order of magnitude — holds either
// way; see EXPERIMENTS.md.
func TestTable1BaselineAnchors(t *testing.T) {
	cases := []struct {
		cfg        wcfg.Config
		measured   cdag.Weight // regression anchor for this repo
		paperWords int
	}{
		{wcfg.Equal(16), 131, 445},
		{wcfg.DoubleAccumulator(16), 260, 636},
	}
	for _, c := range cases {
		g := dwtGraph(t, 256, 8, c.cfg)
		got, err := MinMemory(g.G, g.Layers, 16)
		if err != nil {
			t.Fatalf("%s: %v", c.cfg.Name, err)
		}
		if got/16 != c.measured {
			t.Errorf("%s: min memory = %d words, want %d (paper's weaker baseline: %d)",
				c.cfg.Name, got/16, c.measured, c.paperWords)
		}
		// The side of the comparison must match the paper: the
		// baseline needs an order of magnitude more memory than the
		// optimum scheduler's 10/18 words.
		s, err := dwt.NewScheduler(g)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := s.MinMemory(16)
		if err != nil {
			t.Fatal(err)
		}
		if got < 10*opt {
			t.Errorf("%s: baseline %d not ≥ 10× optimum %d", c.cfg.Name, got, opt)
		}
	}
}

// TestAlternatingOrder: S_2 ascends, S_3 descends.
func TestAlternatingOrder(t *testing.T) {
	layers := [][]cdag.NodeID{{0, 1}, {2, 3}, {4, 5}, {6}}
	order := LayerByLayerOrder(layers)
	want := []cdag.NodeID{2, 3, 5, 4, 6}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// TestGreedyArbitraryCDAG: the greedy scheduler handles non-layered,
// non-tree graphs at the existence bound (Proposition 2.3).
func TestGreedyArbitraryCDAG(t *testing.T) {
	g := &cdag.Graph{}
	a := g.AddNode(2, "a")
	b := g.AddNode(1, "b")
	c := g.AddNode(3, "c", a, b)
	d := g.AddNode(1, "d", a, c)
	e := g.AddNode(2, "e", c)
	g.AddNode(1, "f", d, e)
	minB := core.MinExistenceBudget(g)
	for b2 := minB; b2 <= minB+5; b2++ {
		sched, err := Greedy(g, b2)
		if err != nil {
			t.Fatalf("b=%d: %v", b2, err)
		}
		if _, err := core.Simulate(g, b2, sched); err != nil {
			t.Fatalf("b=%d: %v", b2, err)
		}
	}
	if _, err := Greedy(g, minB-1); err == nil {
		t.Error("expected failure below existence bound")
	}
}

// TestGreedyOnMVM: the greedy scheduler also covers MVM graphs,
// giving a generic (if weak) baseline there.
func TestGreedyOnMVM(t *testing.T) {
	g, err := mvm.Build(4, 3, wcfg.Equal(16))
	if err != nil {
		t.Fatal(err)
	}
	b := core.MinExistenceBudget(g.G) + 64
	sched, err := Greedy(g.G, b)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := core.Simulate(g.G, b, sched)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Cost < core.LowerBound(g.G) {
		t.Errorf("cost %d below LB %d", stats.Cost, core.LowerBound(g.G))
	}
}

// TestMinMemorySmall: on a small DWT the heuristic's min memory is at
// least the optimum's.
func TestMinMemorySmall(t *testing.T) {
	g := dwtGraph(t, 16, 4, wcfg.Equal(16))
	lbl, err := MinMemory(g.G, g.Layers, 16)
	if err != nil {
		t.Fatal(err)
	}
	s, err := dwt.NewScheduler(g)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := s.MinMemory(16)
	if err != nil {
		t.Fatal(err)
	}
	if lbl < opt {
		t.Errorf("baseline min memory %d < optimum %d", lbl, opt)
	}
}

// TestEachInputLoadedAtLeastOnce and outputs stored exactly once at
// generous budget.
func TestMoveAccounting(t *testing.T) {
	g := dwtGraph(t, 8, 3, wcfg.Equal(16))
	b := g.G.TotalWeight()
	sched, err := LayerByLayer(g.G, g.Layers, b)
	if err != nil {
		t.Fatal(err)
	}
	m1 := map[cdag.NodeID]int{}
	m2 := map[cdag.NodeID]int{}
	for _, mv := range sched {
		switch mv.Kind {
		case core.M1:
			m1[mv.Node]++
		case core.M2:
			m2[mv.Node]++
		}
	}
	for _, v := range g.G.Sources() {
		if m1[v] != 1 {
			t.Errorf("input %d loaded %d times at full budget", v, m1[v])
		}
	}
	for _, v := range g.G.Sinks() {
		if m2[v] != 1 {
			t.Errorf("sink %d stored %d times", v, m2[v])
		}
	}
}

func BenchmarkLayerByLayerDWT256(b *testing.B) {
	g, err := dwt.Build(256, 8, dwt.ConfigWeights(wcfg.Equal(16)))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := LayerByLayer(g.G, g.Layers, 7120); err != nil {
			b.Fatal(err)
		}
	}
}
