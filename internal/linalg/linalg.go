// Package linalg provides small dense linear-algebra references used
// to cross-check the MVM dataflow graphs and machine execution:
// matrices in row-major order, matrix-vector products, and simple
// vector utilities.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// Matrix is a dense row-major m×n matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewMatrix allocates a zero m×n matrix. It panics on non-positive
// dimensions; use TryNewMatrix when the dimensions come from untrusted
// input (flags, files).
func NewMatrix(m, n int) *Matrix {
	a, err := TryNewMatrix(m, n)
	if err != nil {
		panic(err.Error())
	}
	return a
}

// TryNewMatrix is NewMatrix returning an error instead of panicking on
// non-positive dimensions.
func TryNewMatrix(m, n int) (*Matrix, error) {
	if m <= 0 || n <= 0 {
		return nil, fmt.Errorf("linalg: invalid dimensions %dx%d", m, n)
	}
	return &Matrix{Rows: m, Cols: n, Data: make([]float64, m*n)}, nil
}

// At returns A[i,j] (zero-based).
func (a *Matrix) At(i, j int) float64 { return a.Data[i*a.Cols+j] }

// Set assigns A[i,j] = v.
func (a *Matrix) Set(i, j int, v float64) { a.Data[i*a.Cols+j] = v }

// MulVec computes y = A·x. len(x) must equal Cols.
func (a *Matrix) MulVec(x []float64) ([]float64, error) {
	if len(x) != a.Cols {
		return nil, fmt.Errorf("linalg: dimension mismatch: %dx%d matrix with vector of length %d", a.Rows, a.Cols, len(x))
	}
	y := make([]float64, a.Rows)
	for i := 0; i < a.Rows; i++ {
		row := a.Data[i*a.Cols : (i+1)*a.Cols]
		var s float64
		for k, v := range row {
			s += v * x[k]
		}
		y[i] = s
	}
	return y, nil
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, errors.New("linalg: dot of different lengths")
	}
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s, nil
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// MaxAbsDiff returns max_i |a[i]-b[i]|; used by tests to compare
// machine-executed schedules against this reference.
func MaxAbsDiff(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, errors.New("linalg: compare of different lengths")
	}
	var m float64
	for i := range a {
		d := math.Abs(a[i] - b[i])
		if d > m {
			m = d
		}
	}
	return m, nil
}
