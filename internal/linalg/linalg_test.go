package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewMatrixPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for bad dims")
		}
	}()
	NewMatrix(0, 3)
}

func TestAtSet(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 || m.Data[5] != 7 {
		t.Error("row-major indexing broken")
	}
}

func TestMulVecKnown(t *testing.T) {
	m := NewMatrix(2, 3)
	copy(m.Data, []float64{1, 2, 3, 4, 5, 6})
	y, err := m.MulVec([]float64{1, 0, -1})
	if err != nil {
		t.Fatal(err)
	}
	if y[0] != -2 || y[1] != -2 {
		t.Errorf("y = %v, want [-2 -2]", y)
	}
}

func TestMulVecDimensionError(t *testing.T) {
	m := NewMatrix(2, 3)
	if _, err := m.MulVec([]float64{1, 2}); err == nil {
		t.Error("dimension mismatch not caught")
	}
}

func TestDot(t *testing.T) {
	d, err := Dot([]float64{1, 2, 3}, []float64{4, 5, 6})
	if err != nil || d != 32 {
		t.Errorf("Dot = %f err %v", d, err)
	}
	if _, err := Dot([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch not caught")
	}
}

func TestNorm2(t *testing.T) {
	if got := Norm2([]float64{3, 4}); math.Abs(got-5) > 1e-12 {
		t.Errorf("Norm2 = %f", got)
	}
	if Norm2(nil) != 0 {
		t.Error("empty norm should be 0")
	}
}

func TestMaxAbsDiff(t *testing.T) {
	d, err := MaxAbsDiff([]float64{1, 2}, []float64{1.5, 1})
	if err != nil || d != 1 {
		t.Errorf("MaxAbsDiff = %f err %v", d, err)
	}
	if _, err := MaxAbsDiff([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch not caught")
	}
}

// TestMulVecLinearity: A(x+y) == Ax + Ay.
func TestMulVecLinearity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n := 1+rng.Intn(6)+1, 1+rng.Intn(6)
		A := NewMatrix(m, n)
		for i := range A.Data {
			A.Data[i] = rng.NormFloat64()
		}
		x := make([]float64, n)
		y := make([]float64, n)
		s := make([]float64, n)
		for i := range x {
			x[i], y[i] = rng.NormFloat64(), rng.NormFloat64()
			s[i] = x[i] + y[i]
		}
		ax, _ := A.MulVec(x)
		ay, _ := A.MulVec(y)
		as, _ := A.MulVec(s)
		for i := range as {
			if math.Abs(as[i]-(ax[i]+ay[i])) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestIdentity: I·x == x.
func TestIdentity(t *testing.T) {
	n := 5
	I := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		I.Set(i, i, 1)
	}
	x := []float64{1, -2, 3, -4, 5}
	y, err := I.MulVec(x)
	if err != nil {
		t.Fatal(err)
	}
	d, _ := MaxAbsDiff(x, y)
	if d > 1e-12 {
		t.Errorf("identity product differs by %g", d)
	}
}

func TestTryNewMatrix(t *testing.T) {
	if _, err := TryNewMatrix(0, 3); err == nil {
		t.Fatal("zero rows accepted")
	}
	if _, err := TryNewMatrix(3, -1); err == nil {
		t.Fatal("negative cols accepted")
	}
	a, err := TryNewMatrix(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a.Rows != 2 || a.Cols != 3 || len(a.Data) != 6 {
		t.Fatalf("TryNewMatrix misbuilt: %+v", a)
	}
}
