# Development entry points. `make check` is the full pre-commit gate:
# build, vet, race-enabled tests, and a one-iteration benchmark smoke
# pass (-short skips the heavy figure sweeps; see bench_test.go).

GO ?= go

.PHONY: all build vet test race race-fault bench-smoke bench-json bench-json-quick serve-check obs-check metrics-lint patch-check cluster-check cdag-check soak-smoke fuzz-smoke bench-overload bench-cluster bench-anytime staticcheck check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Race-enabled fault-injection and degradation tests: worker panics,
# injected faults, cancellation, and fallback paths (docs/ROBUSTNESS.md).
race-fault:
	$(GO) test -race -run 'Fault|Panic|Ctx|Cancel|Deadline|Degrad|Hung|Budget' ./internal/par/ ./internal/solve/ ./internal/guard/

bench-smoke:
	$(GO) test -short -bench=. -benchtime=1x -run '^$$' ./...

# Writes the perf-regression report (see docs/PERFORMANCE.md).
bench-json:
	$(GO) run ./cmd/experiments -bench-json BENCH_6.json

# One-iteration perf smoke artifact for CI (not a comparable baseline).
bench-json-quick:
	$(GO) run ./cmd/experiments -bench-json BENCH_6.json -bench-quick

# Boots the wrbpgd daemon on a random port and exercises every endpoint
# end to end, including graceful SIGTERM shutdown (docs/SERVICE.md).
serve-check:
	$(GO) test -race -run TestServeEndToEnd -v ./cmd/wrbpgd/

# Boots the daemon with a debug listener, scrapes GET /metrics, and
# validates the whole observability surface: exposition parseability,
# series count, trace retrieval, pprof, and structured JSON logs
# (docs/OBSERVABILITY.md). Includes the fleet metrics lint and the
# race-enabled tracing/SLO unit suites.
obs-check: metrics-lint
	$(GO) test -race -run TestObsEndToEnd -v ./cmd/wrbpgd/
	$(GO) test -race ./internal/obs/...

# Metrics contract lint: boots a 3-replica in-process fleet, scrapes
# every replica in both exposition flavors (Prometheus 0.0.4 and
# OpenMetrics with exemplars), and asserts every wrbpg_* series carries
# HELP/TYPE metadata and round-trips through the strict parser
# (docs/OBSERVABILITY.md §metrics).
metrics-lint:
	$(GO) test -race -run TestMetricsLint -v ./cmd/wrbpgload/

# Race-enabled incremental re-solve gate: the shuffled-delta property
# tests in every family (warm answers bit-identical to cold rebuilds),
# the facade patch semantics with fault injection, the patch endpoint,
# and the CLI -patch path (docs/PERFORMANCE.md §incremental).
patch-check:
	$(GO) test -race -run 'SetWeights|Patch' ./internal/dwt/ ./internal/ktree/ ./internal/memstate/ ./internal/solve/ ./internal/serve/ ./cmd/wrbpg/

# Race-enabled cluster gate: a 3-replica in-process fleet (consistent-
# hash ring, peer fill, cross-replica singleflight) under round-robin
# load, then a kill-one soak. Acceptance: near-zero duplicate cold
# solves fleet-wide and zero 5xx while a replica dies (docs/CLUSTER.md).
cluster-check:
	$(GO) test -race -run TestClusterFleet -v ./cmd/wrbpgload/

# 30-second chaos soak: wrbpgload drives an in-process server with a
# panic injected into every 5th solver work item; the run must produce
# zero 5xx, a bounded p99, and stay inside the report-gate SLOs (the
# same burn-rate math the server's /v1/slo uses; docs/ROBUSTNESS.md
# §overload). The availability bar is loose (0.9) because the soak
# sheds on purpose — the gate proves the wiring, not a production SLO.
soak-smoke:
	$(GO) run ./cmd/wrbpgload -inproc -workers 4 -duration 30s \
		-timeout 300ms -fault-every 5 -assert-no-5xx -max-p99 5s \
		-slo-p99 5s -slo-availability 0.9

# Short fuzz pass over the wire request decoders: malformed bodies must
# surface as structured 400s, never panics. One -fuzz per invocation
# (a go test restriction).
fuzz-smoke:
	$(GO) test -fuzz=FuzzScheduleRequest -fuzztime=10s -run '^$$' ./internal/serve/wire/
	$(GO) test -fuzz=FuzzCDAGRequest -fuzztime=10s -run '^$$' ./internal/serve/wire/
	$(GO) test -fuzz=FuzzPatchRequest -fuzztime=10s -run '^$$' ./internal/serve/wire/
	$(GO) test -fuzz=FuzzPeerRequest -fuzztime=10s -run '^$$' ./internal/serve/wire/

# Race-enabled general-DAG gate: the full anytime search suite
# (property bounds, monotone trajectories, fault injection, the
# 20-graph roster acceptance — skipped under -short elsewhere), the
# canonical-form isomorphism tests, the GraphSpec decoder, and the
# serve-layer cdag end-to-end tests (docs/SERVICE.md §anytime).
cdag-check:
	$(GO) test -race -v -run TestRosterAcceptance ./internal/anytime/
	$(GO) test -race ./internal/anytime/ ./internal/cdag/
	$(GO) test -race -run 'CDAG|GraphSpec|Canonical' ./internal/serve/ ./internal/serve/wire/

# The BENCH_7 overload run: measure capacity closed-loop, then offer 4x
# that rate open-loop for 10s. Acceptance: nothing but 200s and 429s
# (docs/PERFORMANCE.md §overload).
bench-overload:
	$(GO) run ./cmd/wrbpgload -inproc -workers 4 -probe 3s -overload 4 \
		-duration 10s -timeout 300ms -assert-no-5xx -out BENCH_7.json

# The BENCH_8 cluster run: a 3-replica in-process fleet on a fixed
# hot-key roster, then a 5s kill-one soak. Acceptance: fleet duplicate
# cold solves near zero (cross-replica singleflight) and zero 5xx while
# a replica drains and dies (docs/CLUSTER.md).
bench-cluster:
	$(GO) run ./cmd/wrbpgload -inproc-replicas 3 -workers 4 -duration 10s \
		-timeout 400ms -hot-budgets 4 -kill-soak 5s -assert-no-5xx \
		-max-duplicates 10 -out BENCH_8.json

# The BENCH_9 anytime run: the fixed 20-graph CDAG roster at the 50 ms
# acceptance slice — expansion rate, pruning ratio, time-to-beat-
# baseline, and the 1-vs-GOMAXPROCS time-to-match speedup kernel
# (docs/PERFORMANCE.md §anytime). On a single-CPU host the speedup
# kernel's ceiling is parity; the report says so in speedup_note.
bench-anytime:
	$(GO) run ./cmd/experiments -anytime-json BENCH_9.json

# Runs staticcheck when it is installed; skips (successfully) when not,
# so the gate works in minimal containers. CI installs it explicitly.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping"; \
	fi

check: build vet race race-fault bench-smoke serve-check obs-check patch-check cluster-check cdag-check staticcheck
