# Development entry points. `make check` is the full pre-commit gate:
# build, vet, race-enabled tests, and a one-iteration benchmark smoke
# pass (-short skips the heavy figure sweeps; see bench_test.go).

GO ?= go

.PHONY: all build vet test race bench-smoke bench-json check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench-smoke:
	$(GO) test -short -bench=. -benchtime=1x -run '^$$' ./...

# Writes the perf-regression report (see docs/PERFORMANCE.md).
bench-json:
	$(GO) run ./cmd/experiments -bench-json BENCH_1.json

check: build vet race bench-smoke
