// Package wrbpg implements the Weighted Red-Blue Pebble Game and the
// dataflow-specific scheduling and memory-design algorithms of
// "Dataflow-Specific Algorithms for Resource-Constrained Scheduling
// and Memory Design" (SPAA 2025).
//
// The root package is a thin facade over the implementation packages:
//
//   - internal/cdag      node-weighted computational DAGs
//   - internal/core      the game: moves, schedules, simulator, bounds
//   - internal/dwt       DWT(n,d) graphs and the optimum scheduler (Alg. 1)
//   - internal/ktree     k-ary tree graphs and the Pt DP (Eq. 6)
//   - internal/memstate  initial/reuse memory-state DP (Eq. 8)
//   - internal/mvm       MVM(m,n) graphs and the tiling scheduler
//   - internal/baseline  layer-by-layer and greedy baselines
//   - internal/ioopt     IOOpt bound models for MVM
//   - internal/exact     exhaustive optimal search (certification)
//   - internal/memdesign minimum-memory search and capacity specs
//   - internal/synth     SRAM synthesis model (area/power/layout)
//   - internal/machine   numeric execution of schedules
//   - internal/bench     regeneration of every paper table and figure
//
// Extensions along the paper's stated future-work axes:
//
//   - internal/fft       radix-2 butterfly graphs, blocked scheduling
//   - internal/conv      T-tap FIR/wavelet dataflows (+ multi-level)
//   - internal/mmm       matrix-matrix tiling
//   - internal/banded    structured-sparse matrix-vector products
//   - internal/pipeline  modular schedule composition
//   - internal/energy    schedule → energy/power estimates
//   - internal/dse       mixed-precision design-space exploration
//   - internal/stream    per-window deployment runtime
//
// See README.md for a quickstart, DESIGN.md for the full system
// inventory, docs/MODEL.md for a tutorial and docs/TRACEABILITY.md
// for the paper→code→test map; bench_test.go in this directory
// regenerates the paper's evaluation (one benchmark per table and
// figure).
package wrbpg

import (
	"wrbpg/internal/banded"
	"wrbpg/internal/cdag"
	"wrbpg/internal/conv"
	"wrbpg/internal/core"
	"wrbpg/internal/dwt"
	"wrbpg/internal/fft"
	"wrbpg/internal/mmm"
	"wrbpg/internal/mvm"
	"wrbpg/internal/wcfg"
)

// Re-exported core vocabulary, so small programs can depend on the
// facade alone.
type (
	// Graph is a node-weighted CDAG.
	Graph = cdag.Graph
	// NodeID identifies a node in a Graph.
	NodeID = cdag.NodeID
	// Weight is a node weight or budget in bits.
	Weight = cdag.Weight
	// Move is a single game move (M1..M4 on a node).
	Move = core.Move
	// Schedule is a sequence of moves.
	Schedule = core.Schedule
	// Stats summarises a simulated schedule.
	Stats = core.Stats
	// WeightConfig selects the Equal / Double Accumulator weighting.
	WeightConfig = wcfg.Config
)

// Move kinds of the game.
const (
	M1 = core.M1
	M2 = core.M2
	M3 = core.M3
	M4 = core.M4
)

// Equal returns the uniform one-word-per-node weighting.
func Equal(wordBits int) WeightConfig { return wcfg.Equal(wordBits) }

// DoubleAccumulator returns the mixed-precision weighting where
// non-input nodes weigh two words.
func DoubleAccumulator(wordBits int) WeightConfig { return wcfg.DoubleAccumulator(wordBits) }

// Simulate validates a schedule against the game rules and the
// weighted red pebble constraint, returning its stats.
func Simulate(g *Graph, budget Weight, s Schedule) (Stats, error) {
	return core.Simulate(g, budget, s)
}

// LowerBound returns the algorithmic lower bound of Proposition 2.4.
func LowerBound(g *Graph) Weight { return core.LowerBound(g) }

// BuildDWT constructs a DWT(n, d) graph under the weighting.
func BuildDWT(n, d int, cfg WeightConfig) (*dwt.Graph, error) {
	return dwt.Build(n, d, dwt.ConfigWeights(cfg))
}

// ScheduleDWT returns an optimum schedule and its cost for a DWT
// graph under the budget.
func ScheduleDWT(g *dwt.Graph, budget Weight) (Schedule, Weight, error) {
	s, err := dwt.NewScheduler(g)
	if err != nil {
		return nil, 0, err
	}
	sched, err := s.Schedule(budget)
	if err != nil {
		return nil, 0, err
	}
	return sched, s.MinCost(budget), nil
}

// BuildMVM constructs an MVM(m, n) graph under the weighting.
func BuildMVM(m, n int, cfg WeightConfig) (*mvm.Graph, error) {
	return mvm.Build(m, n, cfg)
}

// BuildFFT constructs the radix-2 butterfly graph of an n-point
// transform (extension; see internal/fft).
func BuildFFT(n int, cfg WeightConfig) (*fft.Graph, error) {
	return fft.Build(n, cfg)
}

// ScheduleFFT returns the best blocked schedule and its cost under
// the budget.
func ScheduleFFT(g *fft.Graph, budget Weight) (Schedule, Weight, error) {
	t, cost, err := g.Search(budget)
	if err != nil {
		return nil, 0, err
	}
	sched, err := g.BlockedSchedule(t)
	if err != nil {
		return nil, 0, err
	}
	return sched, cost, nil
}

// BuildMMM constructs a matrix-matrix MMM(m, k, n) graph (extension;
// see internal/mmm).
func BuildMMM(m, k, n int, cfg WeightConfig) (*mmm.Graph, error) {
	return mmm.Build(m, k, n, cfg)
}

// ScheduleMMM returns the best tiling/residency schedule and its cost
// under the budget.
func ScheduleMMM(g *mmm.Graph, budget Weight) (Schedule, Weight, error) {
	c, cost, err := g.Search(budget)
	if err != nil {
		return nil, 0, err
	}
	sched, err := g.Schedule(c)
	if err != nil {
		return nil, 0, err
	}
	return sched, cost, nil
}

// BuildConv constructs a T-tap FIR/wavelet dataflow (extension; see
// internal/conv).
func BuildConv(n, taps, down int, cfg WeightConfig) (*conv.Graph, error) {
	return conv.Build(n, taps, down, cfg)
}

// ScheduleConv returns the best sliding-window schedule and its cost
// under the budget.
func ScheduleConv(g *conv.Graph, budget Weight) (Schedule, Weight, error) {
	c, cost, err := g.Search(budget)
	if err != nil {
		return nil, 0, err
	}
	sched, err := g.Schedule(c)
	if err != nil {
		return nil, 0, err
	}
	return sched, cost, nil
}

// BuildBanded constructs a banded (structured-sparse) matrix-vector
// graph (extension; see internal/banded).
func BuildBanded(n, w int, cfg WeightConfig) (*banded.Graph, error) {
	return banded.Build(n, w, cfg)
}

// ScheduleMVM returns the best tiling schedule and its cost for an
// MVM graph under the budget.
func ScheduleMVM(g *mvm.Graph, budget Weight) (Schedule, Weight, error) {
	tc, cost, err := g.Search(budget)
	if err != nil {
		return nil, 0, err
	}
	sched, err := g.TileSchedule(tc)
	if err != nil {
		return nil, 0, err
	}
	return sched, cost, nil
}
