package wrbpg_test

// Whole-system integration: compile a schedule, serialize its
// manifest, reload it, verify it against a freshly built graph, and
// execute it with real arithmetic — the full deployment round trip a
// firmware build would perform.

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"wrbpg"
	"wrbpg/internal/core"
	"wrbpg/internal/energy"
	"wrbpg/internal/machine"
	"wrbpg/internal/memdesign"
	"wrbpg/internal/stream"
	"wrbpg/internal/synth"
	"wrbpg/internal/wavelet"
	"wrbpg/internal/wcfg"
)

func TestDeploymentRoundTrip(t *testing.T) {
	// 1. Compile.
	g, err := wrbpg.BuildDWT(64, 6, wrbpg.Equal(16))
	if err != nil {
		t.Fatal(err)
	}
	budget := wrbpg.Weight(8 * 16)
	sched, cost, err := wrbpg.ScheduleDWT(g, budget)
	if err != nil {
		t.Fatal(err)
	}
	// 2. Compact (no fat expected in the optimal schedule, but the
	// pass must be harmless) and wrap in a manifest.
	sched = core.Compact(g.G, sched)
	m, err := core.NewManifest("DWT(64,6)/Equal", g.G, budget, sched)
	if err != nil {
		t.Fatal(err)
	}
	if m.CostBits != cost {
		t.Fatalf("manifest cost %d != scheduler cost %d", m.CostBits, cost)
	}
	// 3. Serialize and reload.
	var buf bytes.Buffer
	if err := core.WriteManifest(&buf, m); err != nil {
		t.Fatal(err)
	}
	loaded, err := core.ReadManifest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// 4. Verify against a freshly built graph (a different process
	// would rebuild it from the same parameters).
	fresh, err := wrbpg.BuildDWT(64, 6, wrbpg.Equal(16))
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.Verify(fresh.G); err != nil {
		t.Fatal(err)
	}
	// 5. Execute the reloaded schedule on real data.
	rng := rand.New(rand.NewSource(81))
	signal := make([]float64, 64)
	for i := range signal {
		signal[i] = rng.NormFloat64()
	}
	prog, err := machine.FromDWT(fresh, signal)
	if err != nil {
		t.Fatal(err)
	}
	values, stats, err := machine.Run(prog, loaded.BudgetBits, loaded.Moves)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TrafficBits != loaded.CostBits {
		t.Fatalf("executed traffic %d != manifest cost %d", stats.TrafficBits, loaded.CostBits)
	}
	coeffs, finalAvg := machine.DWTOutputs(fresh, values)
	ref, err := wavelet.Transform(signal, 6)
	if err != nil {
		t.Fatal(err)
	}
	wantC, wantA := wavelet.Outputs(ref)
	for l := range wantC {
		for j := range wantC[l] {
			if math.Abs(coeffs[l][j]-wantC[l][j]) > 1e-9 {
				t.Fatalf("coeff mismatch at level %d", l+1)
			}
		}
	}
	for j := range wantA {
		if math.Abs(finalAvg[j]-wantA[j]) > 1e-9 {
			t.Fatal("final averages mismatch")
		}
	}
	// 6. Size and power the memory the schedule needs.
	spec := memdesign.NewSpec(loaded.PeakBits, 16)
	macro, err := synth.Synthesize(spec.Pow2Bits, 16, synth.TSMC65())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := energy.Estimate(stats.CoreStats(), len(loaded.Moves), macro, energy.Default65nm())
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalPJ <= 0 || rep.AvgPowerMW <= 0 {
		t.Fatalf("degenerate energy report %+v", rep)
	}
}

// TestStreamingDeployment: the compiled window schedule processes a
// continuous recording with compulsory-only traffic per window.
func TestStreamingDeployment(t *testing.T) {
	r, err := stream.NewDWT(32, 5, wcfg.Equal(16))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(82))
	signal := make([]float64, 256)
	for i := range signal {
		signal[i] = rng.NormFloat64()
	}
	windows, stats, err := r.Process(signal, 32)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Windows != 8 {
		t.Fatalf("windows = %d", stats.Windows)
	}
	perWindow := stats.TrafficBits / 8
	if perWindow != wrbpg.LowerBound(r.Graph.G) {
		t.Errorf("per-window traffic %d != LB %d", perWindow, wrbpg.LowerBound(r.Graph.G))
	}
	for _, w := range windows {
		if len(w.Coeffs) != 5 {
			t.Fatalf("window@%d has %d levels", w.Start, len(w.Coeffs))
		}
	}
}
